package restored

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"sgr/internal/core"
	"sgr/internal/graph"
	"sgr/internal/obs"
	"sgr/internal/oracle"
	"sgr/internal/parallel"
	"sgr/internal/sampling"
)

// Config tunes a Service. The zero value serves with sensible defaults.
type Config struct {
	// Workers is the pipeline worker-pool width (default
	// parallel.DefaultWorkers — the same bound the evaluation engine
	// uses). Each worker runs one job at a time, start to finish.
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs
	// (default 64). A full queue rejects submissions with ErrQueueFull —
	// backpressure, not unbounded memory.
	QueueDepth int
	// CacheDir, when set, persists the content-addressed result cache on
	// disk so a restarted daemon answers old submissions without
	// recomputing them — and makes accepted jobs durable: submissions are
	// logged to a write-ahead journal (jobs.wal) in the same directory
	// before they become runnable, and a restarted daemon replays
	// unfinished ones, so a crash mid-pipeline loses no accepted work.
	CacheDir string
	// PropsWorkers bounds the parallel loops of /props property
	// computation (default 1: results are then deterministic regardless
	// of the host's core count, the same reasoning as the evaluation
	// harness's per-cell default).
	PropsWorkers int
	// RewireWorkers bounds the propose-phase parallelism of each job's
	// phase-4 rewiring (default 1: the daemon's parallelism unit is the
	// job, and nesting rewiring pools under Workers concurrent jobs
	// multiplies goroutines for no benefit on a loaded pool). Rewiring
	// output is byte-identical at any value, which is why this knob is
	// service configuration and deliberately NOT part of the job spec or
	// its content address: the same submission hits the same cache line
	// on daemons configured differently.
	RewireWorkers int
	// Logf reports job lifecycle events (log.Printf-shaped; default
	// silent).
	Logf func(format string, args ...any)
}

// Submission errors.
var (
	// ErrQueueFull rejects a submission when the bounded job queue is at
	// capacity.
	ErrQueueFull = errors.New("restored: job queue full")
	// ErrClosed rejects submissions after Close.
	ErrClosed = errors.New("restored: service shutting down")
	// ErrUnknownJob reports a Cancel of an id the job table has never
	// seen.
	ErrUnknownJob = errors.New("restored: unknown job")
	// ErrNotCancellable reports a Cancel of a job already in a terminal
	// state — there is nothing left to stop.
	ErrNotCancellable = errors.New("restored: job already finished")
)

// Cancellation causes. These flow through the job context into the
// pipeline's abort error, so run can tell an operator cancel and an
// expired deadline apart from a genuine pipeline failure.
var (
	errJobCancelled = errors.New("restored: job cancelled")
	errJobDeadline  = errors.New("restored: job deadline exceeded")
)

// Service is the restoration job engine: a bounded queue feeding a fixed
// worker pool, a singleflighting job table keyed by content address, and
// the result cache. It is safe for concurrent use.
//
// Retention: the job table keeps finished jobs so status polling and
// duplicate submissions keep answering, but a finished job releases its
// submission payload and shrinks to a status plus a pointer into the
// result cache; failed jobs are replaced (and so retried) by the next
// identical submission. The result cache is content-addressed storage and
// unbounded by design — size it with the disk tier (CacheDir), which is
// also what survives restarts.
type Service struct {
	cfg   Config
	cache *Cache
	queue chan *Job
	// wal is the accepted-job journal (nil without CacheDir). Appends
	// happen before a job becomes visible to workers, so a terminal
	// record can never precede its accepted record.
	wal *walJournal

	mu     sync.Mutex
	jobs   map[string]*Job
	closed bool

	wg sync.WaitGroup

	// Metrics. Everything observable about the service lives in one
	// obs.Registry: counters and the running gauge are updated on the job
	// path, live quantities (queue depth, table size, configuration) are
	// GaugeFuncs read at scrape time, and the latency histograms feed the
	// /v1/metrics quantile readouts. All of it is wall-clock/throughput
	// telemetry — none of it feeds a job key or a result byte.
	reg          *obs.Registry
	submitted    *obs.Counter // jobs accepted (new job ids)
	deduped      *obs.Counter // submissions answered by an existing job
	completed    *obs.Counter // jobs finished successfully
	failed       *obs.Counter // jobs finished with an error
	cancelled    *obs.Counter // jobs cancelled (DELETE or deadline)
	replayed     *obs.Counter // jobs re-enqueued from the WAL at startup
	walRecords   *obs.Counter // WAL records appended (accepted + terminal)
	pipelineRuns *obs.Counter // full pipeline executions (cache misses)
	cacheHits    *obs.Counter // jobs answered from the result cache
	remoteCrawls *obs.Counter // server-side graphd crawls performed
	running      *obs.Gauge   // jobs currently executing

	// Cumulative pipeline-phase wall clock (microseconds) over every
	// pipeline execution (cache hits excluded — they run no phases).
	// rewire ⊂ pipeline; the difference is phases 1-3 plus estimation.
	// These predate the histograms below and stay registered under their
	// original names so existing scrapes keep parsing.
	pipelineUS *obs.Counter
	rewireUS   *obs.Counter

	queueUsec    *obs.Histogram // enqueue -> worker pickup
	pipelineUsec *obs.Histogram // per-run pipeline wall clock
	rewireUsec   *obs.Histogram // per-run phase-4 wall clock
	encodeUsec   *obs.Histogram // per-run binary encode wall clock
	requestUsec  *obs.Histogram // per-request service time on job endpoints

	// testBeforeRun, when set (tests only), runs at the top of every
	// worker execution — a seam for stalling workers deterministically.
	testBeforeRun func(*Job)
}

// Job is one submission's lifecycle. Its identity is the content address
// of the submission, so "the same job" means "the same work".
type Job struct {
	// ID is the job key: hex SHA-256 of the canonicalized submission.
	ID string

	spec *jobSpec
	done chan struct{}

	// trace is the job's pipeline timeline: a queue span opened at
	// submission, then crawl/cache/pipeline-phase/encode spans recorded by
	// the worker. Wall clock only — the job key and result bytes are
	// computed before and without it.
	trace    *obs.Trace
	endQueue func()

	// ctx carries the job's cancellation and deadline. Cooperative: the
	// worker polls it between pipeline phases and rewiring rounds, so
	// cancellation can only abort a job, never perturb the bytes of one
	// that completes. Wall-clock machinery, outside the content address.
	ctx       context.Context
	cancel    context.CancelCauseFunc
	stopTimer context.CancelFunc // non-nil when TimeoutMS armed a deadline

	mu       sync.Mutex
	picked   bool // a worker has taken this job off the queue
	state    string
	phase    string
	err      error
	cached   bool
	res      *Result
	enqueued time.Time
	started  time.Time
	finished time.Time
	queueUS  int64
}

// New starts a Service.
func New(cfg Config) (*Service, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = parallel.DefaultWorkers()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.PropsWorkers <= 0 {
		cfg.PropsWorkers = 1
	}
	if cfg.RewireWorkers <= 0 {
		cfg.RewireWorkers = 1
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	cache, err := NewCache(cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	s := &Service{
		cfg:   cfg,
		cache: cache,
		jobs:  make(map[string]*Job),
		reg:   obs.NewRegistry(),
	}
	s.submitted = s.reg.Counter("restored_jobs_submitted", "jobs accepted (new job ids)")
	s.deduped = s.reg.Counter("restored_jobs_deduped", "submissions answered by an existing job")
	s.completed = s.reg.Counter("restored_jobs_completed", "jobs finished successfully")
	s.failed = s.reg.Counter("restored_jobs_failed", "jobs finished with an error")
	s.cancelled = s.reg.Counter("restored_jobs_cancelled", "jobs cancelled (DELETE or deadline)")
	s.replayed = s.reg.Counter("restored_jobs_replayed", "jobs re-enqueued from the WAL at startup")
	s.walRecords = s.reg.Counter("restored_wal_records", "job WAL records appended (accepted + terminal)")
	s.pipelineRuns = s.reg.Counter("restored_pipeline_runs", "full pipeline executions (cache misses)")
	s.cacheHits = s.reg.Counter("restored_cache_hits", "jobs answered from the result cache")
	s.remoteCrawls = s.reg.Counter("restored_remote_crawls", "server-side graphd crawls performed")
	s.running = s.reg.Gauge("restored_jobs_running", "jobs currently executing")
	s.pipelineUS = s.reg.Counter("restored_pipeline_usec_total", "cumulative pipeline wall clock, microseconds")
	s.rewireUS = s.reg.Counter("restored_rewire_usec_total", "cumulative phase-4 rewiring wall clock, microseconds")
	s.queueUsec = s.reg.Histogram("restored_queue_usec", "job queue latency: enqueue to worker pickup, microseconds")
	s.pipelineUsec = s.reg.Histogram("restored_pipeline_usec", "pipeline execution wall clock per run, microseconds")
	s.rewireUsec = s.reg.Histogram("restored_rewire_usec", "phase-4 rewiring wall clock per run, microseconds")
	s.encodeUsec = s.reg.Histogram("restored_encode_usec", "binary graph encoding wall clock per run, microseconds")
	s.requestUsec = s.reg.Histogram("restored_request_usec", "job-endpoint service time in microseconds (healthz/metrics excluded)")
	s.reg.GaugeFunc("restored_jobs_queued", "queued-but-not-running jobs", func() int64 {
		return int64(len(s.queue))
	})
	s.reg.GaugeFunc("restored_jobs_known", "jobs retained in the job table", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(len(s.jobs))
	})
	s.reg.GaugeFunc("restored_cache_entries", "result cache entries resident", func() int64 {
		return int64(s.cache.Len())
	})
	s.reg.GaugeFunc("restored_workers", "configured pipeline worker-pool width", func() int64 {
		return int64(s.cfg.Workers)
	})
	s.reg.GaugeFunc("restored_rewire_workers", "configured per-job rewiring parallelism", func() int64 {
		return int64(s.cfg.RewireWorkers)
	})

	// Crash recovery: replay the job WAL before any worker starts, so
	// every job the previous process accepted but never finished is
	// runnable again. The queue is widened to hold the whole backlog —
	// recovery must never lose accepted work to its own backpressure.
	var pending []*Job
	if cfg.CacheDir != "" {
		wal, recs, err := openWAL(walPath(cfg.CacheDir))
		if err != nil {
			return nil, err
		}
		s.wal = wal
		pending = s.replayWAL(recs)
	}
	depth := cfg.QueueDepth
	if len(pending) > depth {
		depth = len(pending)
	}
	s.queue = make(chan *Job, depth)
	for _, j := range pending {
		s.jobs[j.ID] = j
		s.queue <- j
		s.replayed.Inc()
		s.cfg.Logf("job %s: replayed from wal", shortKey(j.ID))
	}
	if s.wal != nil {
		// Compact: every record for a finished (or cache-answered) job is
		// dead weight now; rewrite the journal down to the live backlog.
		recs := make([]walRecord, 0, len(pending))
		for _, j := range pending {
			recs = append(recs, walRecord{T: walTypeAccepted, ID: j.ID, Spec: j.spec.walSpec()})
		}
		if err := s.wal.rewrite(recs); err != nil {
			s.cfg.Logf("wal compaction failed: %v", err)
		}
	}

	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// replayWAL reconstructs the backlog a crashed process left behind: for
// each id, the accepted record without a later terminal record wins. Ids
// the result cache already answers are dropped (the crash happened after
// the cache write but before the terminal record — the work is done), and
// so is any record whose spec no longer resolves to its recorded id: the
// id IS the content address, so a mismatch can only mean corruption, and
// a corrupt record must be skipped, never run as the wrong job.
func (s *Service) replayWAL(recs []walRecord) []*Job {
	live := make(map[string]*JobSpec)
	var order []string
	for _, rec := range recs {
		switch rec.T {
		case walTypeAccepted:
			if _, ok := live[rec.ID]; !ok {
				order = append(order, rec.ID)
			}
			live[rec.ID] = rec.Spec
		case walTypeFinished:
			delete(live, rec.ID)
		}
	}
	seen := make(map[string]bool)
	var jobs []*Job
	for _, id := range order {
		spec, ok := live[id]
		if !ok || seen[id] {
			continue
		}
		seen[id] = true
		if spec == nil {
			s.cfg.Logf("wal: dropping job %s: accepted record has no spec", shortKey(id))
			continue
		}
		ps, err := resolveSpec(spec)
		if err != nil {
			s.cfg.Logf("wal: dropping job %s: spec no longer resolves: %v", shortKey(id), err)
			continue
		}
		if ps.key != id {
			s.cfg.Logf("wal: dropping job %s: replayed spec resolves to %s", shortKey(id), shortKey(ps.key))
			continue
		}
		if _, ok := s.cache.Get(ps.key); ok {
			continue // already answered; the cache serves resubmissions
		}
		jobs = append(jobs, newJob(ps))
	}
	return jobs
}

// Registry exposes the service metrics for /v1/metrics and exit logs.
func (s *Service) Registry() *obs.Registry { return s.reg }

// Close stops accepting submissions, drains the queue, and waits for the
// workers to finish.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.queue)
	s.wg.Wait()
	if s.wal != nil {
		s.wal.Close()
	}
}

// Submit registers a submission and returns its job. existing reports
// whether the submission matched a job already known (queued, running, or
// finished) — the singleflight/cache-hit path. A new job is enqueued; a
// full queue fails with ErrQueueFull and registers nothing.
func (s *Service) Submit(spec *JobSpec) (job *Job, existing bool, err error) {
	ps, err := resolveSpec(spec)
	if err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false, ErrClosed
	}
	if j, ok := s.jobs[ps.key]; ok {
		// A failed or cancelled job must not poison its content address
		// forever: a transient crawl failure or an operator abort would
		// otherwise turn every identical resubmission into the old outcome
		// with no way to retry short of restarting the daemon.
		// Queued/running/done jobs dedup; a terminal-unsuccessful one is
		// replaced by a fresh attempt below.
		if !j.retryable() {
			s.mu.Unlock()
			s.deduped.Inc()
			return j, true, nil
		}
	}
	// Backpressure by configured depth, not channel capacity: the channel
	// may have been widened to absorb a WAL replay backlog, and all sends
	// happen under s.mu, so this length check cannot go stale before the
	// send below.
	if len(s.queue) >= s.cfg.QueueDepth {
		s.mu.Unlock()
		return nil, false, ErrQueueFull
	}
	j := newJob(ps)
	// Durability before visibility: the accepted record reaches stable
	// storage before the job is registered or enqueued, so a worker's
	// terminal record can never precede it and a crash after this point
	// cannot lose the job. Registering inside the lock is what makes
	// identical concurrent submissions singleflight: every later submitter
	// finds this entry.
	s.walAccept(ps)
	s.jobs[ps.key] = j
	s.queue <- j
	s.mu.Unlock()
	s.submitted.Inc()
	return j, false, nil
}

// newJob constructs a queued job and arms its cancellation machinery: a
// cancel-with-cause for DELETE and, when the spec carries a timeout, a
// deadline that fires with errJobDeadline. The deadline clock starts at
// acceptance (or re-acceptance, for WAL replays), not at worker pickup.
func newJob(ps *jobSpec) *Job {
	j := &Job{
		ID:       ps.key,
		spec:     ps,
		done:     make(chan struct{}),
		state:    StateQueued,
		enqueued: time.Now(),
		trace:    obs.NewTrace(shortKey(ps.key)),
	}
	j.endQueue = j.trace.Start("queue")
	ctx := context.Background()
	if ps.timeout > 0 {
		ctx, j.stopTimer = context.WithTimeoutCause(ctx, ps.timeout, errJobDeadline)
	}
	j.ctx, j.cancel = context.WithCancelCause(ctx)
	return j
}

// walAccept journals an accepted job. Called with s.mu held, before the
// job becomes visible. An append failure degrades durability, not
// availability: the job still runs, it just will not survive a crash.
func (s *Service) walAccept(ps *jobSpec) {
	if s.wal == nil {
		return
	}
	if err := s.wal.append(walRecord{T: walTypeAccepted, ID: ps.key, Spec: ps.walSpec()}); err != nil {
		s.cfg.Logf("job %s: wal append failed: %v", shortKey(ps.key), err)
		return
	}
	s.walRecords.Inc()
}

// walFinish journals a terminal transition so a restart will not replay
// work that already settled.
func (s *Service) walFinish(id, state string) {
	if s.wal == nil {
		return
	}
	if err := s.wal.append(walRecord{T: walTypeFinished, ID: id, State: state}); err != nil {
		s.cfg.Logf("job %s: wal append failed: %v", shortKey(id), err)
		return
	}
	s.walRecords.Inc()
}

// Cancel requests cancellation of a job. A queued job settles as
// cancelled immediately; a running one is interrupted at its next
// cooperative checkpoint (pipeline phase or rewiring round boundary) —
// Done() is the way to wait for it. Cancelling a terminal job reports
// ErrNotCancellable, an unknown id ErrUnknownJob.
func (s *Service) Cancel(id string) (*Job, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, ErrUnknownJob
	}
	j.mu.Lock()
	if terminalState(j.state) {
		j.mu.Unlock()
		return j, ErrNotCancellable
	}
	picked := j.picked
	j.mu.Unlock()
	j.cancel(errJobCancelled)
	if !picked {
		// Still queued: settle now instead of waiting for a worker to
		// drain it. If a worker picked it up in the window since the check,
		// cancelFinish loses the race harmlessly — the worker's first
		// checkpoint sees the cancelled context instead.
		s.finishCancel(j, errJobCancelled)
	}
	return j, nil
}

// finishCancel settles a job whose context fired. The guard in
// cancelFinish makes the bookkeeping exactly-once no matter how many
// paths (DELETE, deadline, worker checkpoint) observe the cancellation.
func (s *Service) finishCancel(j *Job, cause error) {
	if j.cancelFinish(cause) {
		s.cancelled.Inc()
		s.cfg.Logf("job %s: %v", shortKey(j.ID), cause)
		s.walFinish(j.ID, StateCancelled)
	}
}

// QueueRetryAfter estimates how long a rejected submitter should wait for
// a queue slot: the live backlog divided across the worker pool, priced
// at the median pipeline run (1s before any run has been observed),
// clamped to [1s, 60s]. Pure wall-clock advice for the 429 Retry-After
// header.
func (s *Service) QueueRetryAfter() time.Duration {
	backlog := int64(len(s.queue)) + s.running.Value()
	p50 := s.pipelineUsec.Quantile(0.5)
	if p50 <= 0 {
		p50 = int64(time.Second / time.Microsecond)
	}
	d := time.Duration(p50) * time.Microsecond * time.Duration(backlog) / time.Duration(s.cfg.Workers)
	return min(max(d, time.Second), time.Minute)
}

// forget drops a job from the table. Benchmarks use it to force repeated
// identical submissions through the worker + result cache instead of the
// job-table dedup short-circuit.
func (s *Service) forget(id string) {
	s.mu.Lock()
	delete(s.jobs, id)
	s.mu.Unlock()
}

// Job looks up a job by id.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Done returns a channel closed when the job finishes (either way).
func (j *Job) Done() <-chan struct{} { return j.done }

// Trace returns the job's pipeline timeline. A Trace is safe for
// concurrent use, so serving it while the job runs shows a live partial
// timeline.
func (j *Job) Trace() *obs.Trace { return j.trace }

// Status snapshots the job for the wire.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{ID: j.ID, State: j.state, Phase: j.phase, Cached: j.cached}
	st.QueueUS = j.queueUS
	switch {
	case j.state == StateRunning:
		st.PhaseUS = time.Since(j.started).Microseconds()
	case !j.finished.IsZero() && !j.started.IsZero():
		st.PhaseUS = j.finished.Sub(j.started).Microseconds()
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.res != nil {
		st.Result = j.res.JobResult()
	}
	return st
}

// Result returns the finished result, or the job's failure.
func (j *Job) Result() (*Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.err != nil:
		return nil, j.err
	case j.res == nil:
		return nil, fmt.Errorf("restored: job %s not finished", j.ID)
	}
	return j.res, nil
}

// terminalState reports whether a job state admits no further
// transitions.
func terminalState(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

// startPickup marks the worker pickup: the queue span ends, the queue
// latency freezes, and the execution clock starts. It returns false when
// the job already reached a terminal state — cancelled while queued — in
// which case the worker must drop it without running anything.
func (j *Job) startPickup() bool {
	j.mu.Lock()
	if terminalState(j.state) {
		j.mu.Unlock()
		return false
	}
	j.picked = true
	j.started = time.Now()
	j.queueUS = j.started.Sub(j.enqueued).Microseconds()
	j.mu.Unlock()
	j.endQueue()
	return true
}

func (j *Job) setRunning(phase string) {
	j.mu.Lock()
	j.state, j.phase = StateRunning, phase
	j.mu.Unlock()
}

// retryable reports whether a resubmission should replace this job:
// failed and cancelled are terminal-unsuccessful states that must not
// answer for their content address forever.
func (j *Job) retryable() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state == StateFailed || j.state == StateCancelled
}

// ctxErr polls the job's cancellation without blocking. It reads the
// context and nothing else — no RNG, no shared maps — so a job that
// completes was never perturbed by having been cancellable.
func (j *Job) ctxErr() error {
	select {
	case <-j.ctx.Done():
		return context.Cause(j.ctx)
	default:
		return nil
	}
}

// release drops the submission payload — the parsed crawl and its
// canonical bytes dominate a job's footprint and are dead weight once the
// worker is done with them. A finished job shrinks to its status plus a
// pointer to the (cache-shared) result, so the job table stays cheap to
// retain for status polling.
func (j *Job) release() { j.spec = nil }

// releaseCtx tears down the context machinery once the job is terminal,
// releasing the deadline timer and any goroutine parked on Done-derived
// contexts.
func (j *Job) releaseCtx() {
	j.cancel(nil)
	if j.stopTimer != nil {
		j.stopTimer()
	}
}

// finish, fail and cancelFinish are the three terminal transitions. Each
// is guarded — the first one wins, later ones report false and change
// nothing — so the cancellation races (DELETE vs worker completion vs
// deadline) settle on exactly one outcome, one done-channel close, and
// one WAL terminal record.

func (j *Job) finish(res *Result, cached bool) bool {
	j.mu.Lock()
	if terminalState(j.state) {
		j.mu.Unlock()
		return false
	}
	j.state, j.phase = StateDone, ""
	j.res, j.cached = res, cached
	j.finished = time.Now()
	j.release()
	j.mu.Unlock()
	j.releaseCtx()
	close(j.done)
	return true
}

func (j *Job) fail(err error) bool {
	j.mu.Lock()
	if terminalState(j.state) {
		j.mu.Unlock()
		return false
	}
	j.state, j.phase = StateFailed, ""
	j.err = err
	j.finished = time.Now()
	j.release()
	j.mu.Unlock()
	j.releaseCtx()
	close(j.done)
	return true
}

func (j *Job) cancelFinish(cause error) bool {
	j.mu.Lock()
	if terminalState(j.state) {
		j.mu.Unlock()
		return false
	}
	j.state, j.phase = StateCancelled, ""
	j.err = cause
	j.finished = time.Now()
	j.release()
	picked := j.picked
	j.mu.Unlock()
	if !picked {
		// No worker will ever pick this job up (startPickup skips terminal
		// jobs), so close its queue span here — exactly once either way.
		j.endQueue()
	}
	j.releaseCtx()
	close(j.done)
	return true
}

func (s *Service) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.running.Add(1)
		s.run(j)
		s.running.Add(-1)
	}
}

// run executes one job: resolve the crawl (server-side for graphd
// sources), consult the content-addressed cache, and only on a miss run
// the restoration pipeline with the job's pinned seed. The job context is
// polled at the seams run owns (pickup, post-crawl) and inside the
// pipeline at phase/round boundaries via core.Options.Ctx.
func (s *Service) run(j *Job) {
	if s.testBeforeRun != nil {
		s.testBeforeRun(j)
	}
	if !j.startPickup() {
		return // cancelled while queued; already settled
	}
	s.queueUsec.Observe(j.queueUS)
	if cause := j.ctxErr(); cause != nil {
		s.finishCancel(j, cause)
		return
	}
	crawl, key := j.spec.crawl, j.ID
	if j.spec.graphd != nil {
		j.setRunning(PhaseCrawling)
		endSpan := j.trace.Start("crawl")
		c, canon, err := s.crawlGraphd(j.spec)
		endSpan()
		if err != nil {
			if j.fail(err) {
				s.failed.Inc()
				s.cfg.Logf("job %s: crawl failed: %v", shortKey(j.ID), err)
				s.walFinish(j.ID, StateFailed)
			}
			return
		}
		crawl = c
		// Re-key by crawl content: a graphd job and an inline submission
		// of the identical crawl share one cache line.
		key = resultKey(canon, j.spec)
		if cause := j.ctxErr(); cause != nil {
			s.finishCancel(j, cause)
			return
		}
	}
	endSpan := j.trace.Start("cache_read")
	res, ok := s.cache.Get(key)
	endSpan()
	if ok {
		if j.finish(res, true) {
			s.cacheHits.Inc()
			s.completed.Inc()
			s.cfg.Logf("job %s: served from cache", shortKey(j.ID))
			s.walFinish(j.ID, StateDone)
		}
		return
	}

	j.setRunning(PhaseRestoring)
	s.pipelineRuns.Inc()
	opts := core.Options{
		RC:               j.spec.rc,
		SkipRewiring:     j.spec.skip,
		ForbidDegenerate: j.spec.forbid,
		RewireWorkers:    s.cfg.RewireWorkers,
		// Cooperative cancellation: core polls this at phase boundaries
		// (and passes it down to rewiring round boundaries). The polls read
		// the context only, so a completing run is byte-identical whether
		// or not it was cancellable.
		Ctx: j.ctx,
		// The job's timeline doubles as the pipeline trace: core records
		// one span per phase into it. Wall clock only — byte-identical
		// output with or without it.
		Trace: j.trace,
		// The canonical seeded stream — the byte-identical-to-cmd/restore
		// contract.
		Rand: core.PipelineRand(j.spec.seed),
	}
	var (
		pres *core.Result
		err  error
	)
	switch j.spec.method {
	case MethodGjoka:
		pres, err = core.RestoreGjoka(crawl, opts)
	default:
		pres, err = core.Restore(crawl, opts)
	}
	if err != nil {
		if errors.Is(err, errJobCancelled) || errors.Is(err, errJobDeadline) {
			s.finishCancel(j, err)
			return
		}
		if j.fail(err) {
			s.failed.Inc()
			s.cfg.Logf("job %s: pipeline failed: %v", shortKey(j.ID), err)
			s.walFinish(j.ID, StateFailed)
		}
		return
	}
	s.pipelineUS.Add(pres.TotalTime.Microseconds())
	s.rewireUS.Add(pres.RewireTime.Microseconds())
	s.pipelineUsec.Observe(pres.TotalTime.Microseconds())
	s.rewireUsec.Observe(pres.RewireTime.Microseconds())

	j.setRunning(PhaseEncoding)
	endSpan = j.trace.Start("encode")
	encStart := time.Now()
	bin, err := graph.AppendBinary(nil, pres.Graph)
	s.encodeUsec.Observe(time.Since(encStart).Microseconds())
	endSpan()
	if err != nil {
		if j.fail(err) {
			s.failed.Inc()
			s.walFinish(j.ID, StateFailed)
		}
		return
	}
	result := &Result{
		GraphBin: bin,
		Meta: ResultMeta{
			Nodes:          pres.Graph.N(),
			Edges:          pres.Graph.M(),
			NumAdded:       pres.NumAdded,
			RewireAccepted: pres.RewireStats.Accepted,
			RewireAttempts: pres.RewireStats.Attempts,
			TotalMS:        float64(pres.TotalTime.Microseconds()) / 1e3,
			RewireMS:       float64(pres.RewireTime.Microseconds()) / 1e3,
		},
		g: pres.Graph,
	}
	endSpan = j.trace.Start("cache_write")
	err = s.cache.Put(key, result)
	endSpan()
	if err != nil {
		// The result survives in memory; only persistence degraded.
		s.cfg.Logf("job %s: cache persist failed: %v", shortKey(j.ID), err)
	}
	if j.finish(result, false) {
		s.completed.Inc()
		s.cfg.Logf("job %s: restored n=%d m=%d in %.0fms", shortKey(j.ID),
			result.Meta.Nodes, result.Meta.Edges, result.Meta.TotalMS)
		s.walFinish(j.ID, StateDone)
	}
}

// crawlGraphd performs the server-side crawl of a graphd job through
// oracle.Client — the exact crawl `crawl -url -seed` would record.
func (s *Service) crawlGraphd(ps *jobSpec) (*sampling.Crawl, []byte, error) {
	s.remoteCrawls.Inc()
	client, err := oracle.NewClient(oracle.ClientConfig{
		BaseURL:    ps.graphd.URL,
		APIKey:     ps.graphd.APIKey,
		MaxRetries: ps.graphd.Retries,
	})
	if err != nil {
		return nil, nil, err
	}
	defer client.Close()
	seedNode := -1
	if ps.graphd.SeedNode != nil {
		seedNode = *ps.graphd.SeedNode
	}
	c, err := sampling.SeededRandomWalk(client, seedNode, ps.graphd.Fraction, ps.seed)
	if cerr := client.Err(); cerr != nil {
		// A dead oracle surfaces in walkers as a bogus "isolated node";
		// report the real cause.
		return nil, nil, cerr
	}
	if err != nil {
		if client.PrivateSeen() > 0 {
			err = fmt.Errorf("%w (%d queried node(s) answered private)", err, client.PrivateSeen())
		}
		return nil, nil, err
	}
	canon, err := canonicalCrawl(c)
	if err != nil {
		return nil, nil, err
	}
	return c, canon, nil
}

// PropsWorkers exposes the configured /props determinism bound.
func (s *Service) PropsWorkers() int { return s.cfg.PropsWorkers }

// PipelineRuns reports how many jobs ran the full pipeline — the counter
// the cache-hit and singleflight guarantees are asserted against.
func (s *Service) PipelineRuns() int64 { return s.pipelineRuns.Value() }

// CacheHits reports jobs answered from the result cache.
func (s *Service) CacheHits() int64 { return s.cacheHits.Value() }

// Healthz describes the service for the liveness probe.
func (s *Service) Healthz() map[string]any {
	s.mu.Lock()
	jobs := len(s.jobs)
	s.mu.Unlock()
	return map[string]any{
		"jobs":    jobs,
		"workers": s.cfg.Workers,
		"queued":  len(s.queue),
		"wal":     s.wal != nil,
	}
}

// shortKey abbreviates a job id for logs.
func shortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}
