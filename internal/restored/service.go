package restored

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sgr/internal/core"
	"sgr/internal/daemon"
	"sgr/internal/graph"
	"sgr/internal/oracle"
	"sgr/internal/parallel"
	"sgr/internal/sampling"
)

// Config tunes a Service. The zero value serves with sensible defaults.
type Config struct {
	// Workers is the pipeline worker-pool width (default
	// parallel.DefaultWorkers — the same bound the evaluation engine
	// uses). Each worker runs one job at a time, start to finish.
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs
	// (default 64). A full queue rejects submissions with ErrQueueFull —
	// backpressure, not unbounded memory.
	QueueDepth int
	// CacheDir, when set, persists the content-addressed result cache on
	// disk so a restarted daemon answers old submissions without
	// recomputing them.
	CacheDir string
	// PropsWorkers bounds the parallel loops of /props property
	// computation (default 1: results are then deterministic regardless
	// of the host's core count, the same reasoning as the evaluation
	// harness's per-cell default).
	PropsWorkers int
	// RewireWorkers bounds the propose-phase parallelism of each job's
	// phase-4 rewiring (default 1: the daemon's parallelism unit is the
	// job, and nesting rewiring pools under Workers concurrent jobs
	// multiplies goroutines for no benefit on a loaded pool). Rewiring
	// output is byte-identical at any value, which is why this knob is
	// service configuration and deliberately NOT part of the job spec or
	// its content address: the same submission hits the same cache line
	// on daemons configured differently.
	RewireWorkers int
	// Logf reports job lifecycle events (log.Printf-shaped; default
	// silent).
	Logf func(format string, args ...any)
}

// Submission errors.
var (
	// ErrQueueFull rejects a submission when the bounded job queue is at
	// capacity.
	ErrQueueFull = errors.New("restored: job queue full")
	// ErrClosed rejects submissions after Close.
	ErrClosed = errors.New("restored: service shutting down")
)

// Service is the restoration job engine: a bounded queue feeding a fixed
// worker pool, a singleflighting job table keyed by content address, and
// the result cache. It is safe for concurrent use.
//
// Retention: the job table keeps finished jobs so status polling and
// duplicate submissions keep answering, but a finished job releases its
// submission payload and shrinks to a status plus a pointer into the
// result cache; failed jobs are replaced (and so retried) by the next
// identical submission. The result cache is content-addressed storage and
// unbounded by design — size it with the disk tier (CacheDir), which is
// also what survives restarts.
type Service struct {
	cfg   Config
	cache *Cache
	queue chan *Job

	mu     sync.Mutex
	jobs   map[string]*Job
	closed bool

	wg sync.WaitGroup

	submitted    atomic.Int64 // jobs accepted (new job ids)
	deduped      atomic.Int64 // submissions answered by an existing job
	completed    atomic.Int64 // jobs finished successfully
	failed       atomic.Int64 // jobs finished with an error
	pipelineRuns atomic.Int64 // full pipeline executions (cache misses)
	cacheHits    atomic.Int64 // jobs answered from the result cache
	remoteCrawls atomic.Int64 // server-side graphd crawls performed
	running      atomic.Int64 // jobs currently executing

	// Cumulative pipeline-phase wall clock (microseconds) over every
	// pipeline execution (cache hits excluded — they run no phases).
	// rewire ⊂ pipeline; the difference is phases 1-3 plus estimation.
	pipelineUS atomic.Int64
	rewireUS   atomic.Int64

	// testBeforeRun, when set (tests only), runs at the top of every
	// worker execution — a seam for stalling workers deterministically.
	testBeforeRun func(*Job)
}

// Job is one submission's lifecycle. Its identity is the content address
// of the submission, so "the same job" means "the same work".
type Job struct {
	// ID is the job key: hex SHA-256 of the canonicalized submission.
	ID string

	spec *jobSpec
	done chan struct{}

	mu       sync.Mutex
	state    string
	phase    string
	err      error
	cached   bool
	res      *Result
	enqueued time.Time
	finished time.Time
}

// New starts a Service.
func New(cfg Config) (*Service, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = parallel.DefaultWorkers()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.PropsWorkers <= 0 {
		cfg.PropsWorkers = 1
	}
	if cfg.RewireWorkers <= 0 {
		cfg.RewireWorkers = 1
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	cache, err := NewCache(cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	s := &Service{
		cfg:   cfg,
		cache: cache,
		queue: make(chan *Job, cfg.QueueDepth),
		jobs:  make(map[string]*Job),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Close stops accepting submissions, drains the queue, and waits for the
// workers to finish.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.queue)
	s.wg.Wait()
}

// Submit registers a submission and returns its job. existing reports
// whether the submission matched a job already known (queued, running, or
// finished) — the singleflight/cache-hit path. A new job is enqueued; a
// full queue fails with ErrQueueFull and registers nothing.
func (s *Service) Submit(spec *JobSpec) (job *Job, existing bool, err error) {
	ps, err := resolveSpec(spec)
	if err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false, ErrClosed
	}
	if j, ok := s.jobs[ps.key]; ok {
		// A failed job must not poison its content address forever: a
		// transient crawl or pipeline failure would otherwise turn every
		// identical resubmission into the old failure with no way to retry
		// short of restarting the daemon. Queued/running/done jobs dedup;
		// a failed one is replaced by a fresh attempt below.
		if !j.isFailed() {
			s.mu.Unlock()
			s.deduped.Add(1)
			return j, true, nil
		}
	}
	j := &Job{
		ID:       ps.key,
		spec:     ps,
		done:     make(chan struct{}),
		state:    StateQueued,
		enqueued: time.Now(),
	}
	// Registering inside the lock is what makes identical concurrent
	// submissions singleflight: every later submitter finds this entry.
	// The queue reservation happens under the same lock so a full queue
	// can unregister without a window where a doomed job is visible.
	select {
	case s.queue <- j:
		s.jobs[ps.key] = j
		s.mu.Unlock()
		s.submitted.Add(1)
		return j, false, nil
	default:
		s.mu.Unlock()
		return nil, false, ErrQueueFull
	}
}

// forget drops a job from the table. Benchmarks use it to force repeated
// identical submissions through the worker + result cache instead of the
// job-table dedup short-circuit.
func (s *Service) forget(id string) {
	s.mu.Lock()
	delete(s.jobs, id)
	s.mu.Unlock()
}

// Job looks up a job by id.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Done returns a channel closed when the job finishes (either way).
func (j *Job) Done() <-chan struct{} { return j.done }

// Status snapshots the job for the wire.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{ID: j.ID, State: j.state, Phase: j.phase, Cached: j.cached}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.res != nil {
		st.Result = j.res.JobResult()
	}
	return st
}

// Result returns the finished result, or the job's failure.
func (j *Job) Result() (*Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.err != nil:
		return nil, j.err
	case j.res == nil:
		return nil, fmt.Errorf("restored: job %s not finished", j.ID)
	}
	return j.res, nil
}

func (j *Job) setRunning(phase string) {
	j.mu.Lock()
	j.state, j.phase = StateRunning, phase
	j.mu.Unlock()
}

func (j *Job) isFailed() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state == StateFailed
}

// release drops the submission payload — the parsed crawl and its
// canonical bytes dominate a job's footprint and are dead weight once the
// worker is done with them. A finished job shrinks to its status plus a
// pointer to the (cache-shared) result, so the job table stays cheap to
// retain for status polling.
func (j *Job) release() { j.spec = nil }

func (j *Job) finish(res *Result, cached bool) {
	j.mu.Lock()
	j.state, j.phase = StateDone, ""
	j.res, j.cached = res, cached
	j.finished = time.Now()
	j.release()
	j.mu.Unlock()
	close(j.done)
}

func (j *Job) fail(err error) {
	j.mu.Lock()
	j.state, j.phase = StateFailed, ""
	j.err = err
	j.finished = time.Now()
	j.release()
	j.mu.Unlock()
	close(j.done)
}

func (s *Service) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.running.Add(1)
		s.run(j)
		s.running.Add(-1)
	}
}

// run executes one job: resolve the crawl (server-side for graphd
// sources), consult the content-addressed cache, and only on a miss run
// the restoration pipeline with the job's pinned seed.
func (s *Service) run(j *Job) {
	if s.testBeforeRun != nil {
		s.testBeforeRun(j)
	}
	crawl, key := j.spec.crawl, j.ID
	if j.spec.graphd != nil {
		j.setRunning(PhaseCrawling)
		c, canon, err := s.crawlGraphd(j.spec)
		if err != nil {
			s.failed.Add(1)
			s.cfg.Logf("job %s: crawl failed: %v", shortKey(j.ID), err)
			j.fail(err)
			return
		}
		crawl = c
		// Re-key by crawl content: a graphd job and an inline submission
		// of the identical crawl share one cache line.
		key = resultKey(canon, j.spec)
	}
	if res, ok := s.cache.Get(key); ok {
		s.cacheHits.Add(1)
		s.completed.Add(1)
		s.cfg.Logf("job %s: served from cache", shortKey(j.ID))
		j.finish(res, true)
		return
	}

	j.setRunning(PhaseRestoring)
	s.pipelineRuns.Add(1)
	opts := core.Options{
		RC:               j.spec.rc,
		SkipRewiring:     j.spec.skip,
		ForbidDegenerate: j.spec.forbid,
		RewireWorkers:    s.cfg.RewireWorkers,
		// The canonical seeded stream — the byte-identical-to-cmd/restore
		// contract.
		Rand: core.PipelineRand(j.spec.seed),
	}
	var (
		res *core.Result
		err error
	)
	switch j.spec.method {
	case MethodGjoka:
		res, err = core.RestoreGjoka(crawl, opts)
	default:
		res, err = core.Restore(crawl, opts)
	}
	if err != nil {
		s.failed.Add(1)
		s.cfg.Logf("job %s: pipeline failed: %v", shortKey(j.ID), err)
		j.fail(err)
		return
	}
	s.pipelineUS.Add(res.TotalTime.Microseconds())
	s.rewireUS.Add(res.RewireTime.Microseconds())

	j.setRunning(PhaseEncoding)
	bin, err := graph.AppendBinary(nil, res.Graph)
	if err != nil {
		s.failed.Add(1)
		j.fail(err)
		return
	}
	result := &Result{
		GraphBin: bin,
		Meta: ResultMeta{
			Nodes:          res.Graph.N(),
			Edges:          res.Graph.M(),
			NumAdded:       res.NumAdded,
			RewireAccepted: res.RewireStats.Accepted,
			RewireAttempts: res.RewireStats.Attempts,
			TotalMS:        float64(res.TotalTime.Microseconds()) / 1e3,
			RewireMS:       float64(res.RewireTime.Microseconds()) / 1e3,
		},
		g: res.Graph,
	}
	if err := s.cache.Put(key, result); err != nil {
		// The result survives in memory; only persistence degraded.
		s.cfg.Logf("job %s: cache persist failed: %v", shortKey(j.ID), err)
	}
	s.completed.Add(1)
	s.cfg.Logf("job %s: restored n=%d m=%d in %.0fms", shortKey(j.ID),
		result.Meta.Nodes, result.Meta.Edges, result.Meta.TotalMS)
	j.finish(result, false)
}

// crawlGraphd performs the server-side crawl of a graphd job through
// oracle.Client — the exact crawl `crawl -url -seed` would record.
func (s *Service) crawlGraphd(ps *jobSpec) (*sampling.Crawl, []byte, error) {
	s.remoteCrawls.Add(1)
	client, err := oracle.NewClient(oracle.ClientConfig{
		BaseURL:    ps.graphd.URL,
		APIKey:     ps.graphd.APIKey,
		MaxRetries: ps.graphd.Retries,
	})
	if err != nil {
		return nil, nil, err
	}
	defer client.Close()
	seedNode := -1
	if ps.graphd.SeedNode != nil {
		seedNode = *ps.graphd.SeedNode
	}
	c, err := sampling.SeededRandomWalk(client, seedNode, ps.graphd.Fraction, ps.seed)
	if cerr := client.Err(); cerr != nil {
		// A dead oracle surfaces in walkers as a bogus "isolated node";
		// report the real cause.
		return nil, nil, cerr
	}
	if err != nil {
		if client.PrivateSeen() > 0 {
			err = fmt.Errorf("%w (%d queried node(s) answered private)", err, client.PrivateSeen())
		}
		return nil, nil, err
	}
	canon, err := canonicalCrawl(c)
	if err != nil {
		return nil, nil, err
	}
	return c, canon, nil
}

// PropsWorkers exposes the configured /props determinism bound.
func (s *Service) PropsWorkers() int { return s.cfg.PropsWorkers }

// PipelineRuns reports how many jobs ran the full pipeline — the counter
// the cache-hit and singleflight guarantees are asserted against.
func (s *Service) PipelineRuns() int64 { return s.pipelineRuns.Load() }

// CacheHits reports jobs answered from the result cache.
func (s *Service) CacheHits() int64 { return s.cacheHits.Load() }

// Healthz describes the service for the liveness probe.
func (s *Service) Healthz() map[string]any {
	s.mu.Lock()
	jobs := len(s.jobs)
	s.mu.Unlock()
	return map[string]any{
		"jobs":    jobs,
		"workers": s.cfg.Workers,
		"queued":  len(s.queue),
	}
}

// Metrics returns the /v1/metrics snapshot.
func (s *Service) Metrics() []daemon.Metric {
	s.mu.Lock()
	jobs := len(s.jobs)
	s.mu.Unlock()
	return []daemon.Metric{
		{Name: "restored_jobs_submitted", Value: s.submitted.Load()},
		{Name: "restored_jobs_deduped", Value: s.deduped.Load()},
		{Name: "restored_jobs_completed", Value: s.completed.Load()},
		{Name: "restored_jobs_failed", Value: s.failed.Load()},
		{Name: "restored_jobs_running", Value: s.running.Load()},
		{Name: "restored_jobs_queued", Value: int64(len(s.queue))},
		{Name: "restored_jobs_known", Value: int64(jobs)},
		{Name: "restored_pipeline_runs", Value: s.pipelineRuns.Load()},
		{Name: "restored_cache_hits", Value: s.cacheHits.Load()},
		{Name: "restored_cache_entries", Value: int64(s.cache.Len())},
		{Name: "restored_remote_crawls", Value: s.remoteCrawls.Load()},
		{Name: "restored_workers", Value: int64(s.cfg.Workers)},
		{Name: "restored_rewire_workers", Value: int64(s.cfg.RewireWorkers)},
		{Name: "restored_pipeline_usec_total", Value: s.pipelineUS.Load()},
		{Name: "restored_rewire_usec_total", Value: s.rewireUS.Load()},
	}
}

// shortKey abbreviates a job id for logs.
func shortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}
