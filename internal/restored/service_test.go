package restored

import (
	"bytes"
	"net"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"sgr/internal/core"
	"sgr/internal/graph"
	"sgr/internal/oracle"
	"sgr/internal/sampling"
)

// newTestService builds a service sized for tests.
func newTestService(t testing.TB, cfg Config) *Service {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc
}

// waitDone blocks until the job finishes, failing the test on timeout or
// job failure.
func waitDone(t testing.TB, j *Job) *Result {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(2 * time.Minute):
		t.Fatalf("job %s timed out", j.ID)
	}
	res, err := j.Result()
	if err != nil {
		t.Fatalf("job %s failed: %v", j.ID, err)
	}
	return res
}

// offlineRestore replicates cmd/restore's pipeline on a crawl: the
// reference every service result is compared against, byte for byte.
func offlineRestore(t testing.TB, c *sampling.Crawl, rc float64, seed uint64) (*core.Result, []byte) {
	t.Helper()
	res, err := core.Restore(c, core.Options{RC: rc, Rand: core.PipelineRand(seed)})
	if err != nil {
		t.Fatal(err)
	}
	bin, err := graph.AppendBinary(nil, res.Graph)
	if err != nil {
		t.Fatal(err)
	}
	return res, bin
}

// TestJobByteIdenticalToOfflineRestore is the headline guarantee: a job
// submitted to the service yields a graph byte-identical — in the binary
// codec AND as an edge list — to cmd/restore run offline on the same crawl
// and seed.
func TestJobByteIdenticalToOfflineRestore(t *testing.T) {
	_, c := testGraphAndCrawl(t, 3, 0.15)
	offline, offlineBin := offlineRestore(t, c, 5, 3)

	svc := newTestService(t, Config{})
	job, existing, err := svc.Submit(&JobSpec{Seed: 3, RC: 5, Crawl: crawlJSONBytes(t, c)})
	if err != nil {
		t.Fatal(err)
	}
	if existing {
		t.Fatal("first submission reported existing")
	}
	res := waitDone(t, job)

	if !bytes.Equal(res.GraphBin, offlineBin) {
		t.Fatal("service graph binary differs from offline restore")
	}
	var offlineEdges, serviceEdges bytes.Buffer
	if err := graph.WriteEdgeList(&offlineEdges, offline.Graph); err != nil {
		t.Fatal(err)
	}
	sg, err := res.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteEdgeList(&serviceEdges, sg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(offlineEdges.Bytes(), serviceEdges.Bytes()) {
		t.Fatal("service edge list differs from offline restore")
	}
	if res.Meta.Nodes != offline.Graph.N() || res.Meta.Edges != offline.Graph.M() ||
		res.Meta.NumAdded != offline.NumAdded {
		t.Fatalf("result meta %+v does not describe the offline graph", res.Meta)
	}
	if svc.PipelineRuns() != 1 {
		t.Fatalf("pipeline runs = %d, want 1", svc.PipelineRuns())
	}
}

// TestResubmitServedFromCache: an identical resubmission runs no second
// pipeline — first via the job table (the submission IS the job), then via
// the result cache when the job table forgets — and the cached answer is
// at least 10x faster than the original run.
func TestResubmitServedFromCache(t *testing.T) {
	_, c := testGraphAndCrawl(t, 3, 0.2)
	spec := &JobSpec{Seed: 3, RC: 50, Crawl: crawlJSONBytes(t, c)}
	svc := newTestService(t, Config{})

	t0 := time.Now()
	job, _, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	first := waitDone(t, job)
	coldLatency := time.Since(t0)

	// Path 1: the job table answers — the resubmission is the done job.
	t1 := time.Now()
	again, existing, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	res := waitDone(t, again)
	dedupLatency := time.Since(t1)
	if !existing || again != job {
		t.Fatal("resubmission did not land on the existing job")
	}
	if !bytes.Equal(res.GraphBin, first.GraphBin) {
		t.Fatal("resubmission answer differs")
	}

	// Path 2: forget the job so the resubmission re-enters the worker and
	// must be answered by the content-addressed result cache.
	svc.forget(job.ID)
	t2 := time.Now()
	third, existing, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if existing {
		t.Fatal("forgotten job still in the table")
	}
	res3 := waitDone(t, third)
	cacheLatency := time.Since(t2)
	if !third.Status().Cached {
		t.Fatal("re-run job was not served from the result cache")
	}
	if res3 != first {
		t.Fatal("cache returned a different Result instance")
	}

	if got := svc.PipelineRuns(); got != 1 {
		t.Fatalf("pipeline runs = %d after three submissions, want 1", got)
	}
	if got := svc.CacheHits(); got != 1 {
		t.Fatalf("cache hits = %d, want 1", got)
	}
	for name, served := range map[string]time.Duration{"dedup": dedupLatency, "cache": cacheLatency} {
		if served*10 > coldLatency {
			t.Errorf("%s path took %v, not 10x faster than the %v cold run", name, served, coldLatency)
		}
	}
}

// TestConcurrentIdenticalSubmissionsSingleflight: 8 concurrent identical
// submissions run the pipeline exactly once. Run under -race in CI.
func TestConcurrentIdenticalSubmissionsSingleflight(t *testing.T) {
	_, c := testGraphAndCrawl(t, 3, 0.15)
	raw := crawlJSONBytes(t, c)
	svc := newTestService(t, Config{Workers: 4})

	const crawlers = 8
	jobs := make([]*Job, crawlers)
	var wg sync.WaitGroup
	for i := 0; i < crawlers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			job, _, err := svc.Submit(&JobSpec{Seed: 3, RC: 5, Crawl: raw})
			if err != nil {
				t.Error(err)
				return
			}
			jobs[i] = job
		}(i)
	}
	wg.Wait()
	var first *Result
	for i, j := range jobs {
		if j == nil {
			t.Fatal("a submission failed")
		}
		if j != jobs[0] {
			t.Fatalf("submission %d produced a distinct job", i)
		}
		res := waitDone(t, j)
		if first == nil {
			first = res
		} else if res != first {
			t.Fatalf("submission %d saw a different result", i)
		}
	}
	if got := svc.PipelineRuns(); got != 1 {
		t.Fatalf("pipeline ran %d times for %d identical submissions, want exactly 1", got, crawlers)
	}
	if got := svc.Registry().Snapshot(); len(got) == 0 {
		t.Fatal("metrics unavailable")
	}
}

// TestGraphdSourceSharesCacheWithInline: a server-side crawl job produces
// the same crawl, pipeline, and cache line as the equivalent local crawl
// submitted inline — so the second of the two never runs the pipeline.
func TestGraphdSourceSharesCacheWithInline(t *testing.T) {
	g, c := testGraphAndCrawl(t, 7, 0.12)
	ts := httptest.NewServer(oracle.NewServer(g, oracle.ServerConfig{}).Handler())
	defer ts.Close()

	svc := newTestService(t, Config{})
	remote, _, err := svc.Submit(&JobSpec{
		Seed:   7,
		RC:     5,
		Graphd: &GraphdSource{URL: ts.URL, Fraction: 0.12},
	})
	if err != nil {
		t.Fatal(err)
	}
	remoteRes := waitDone(t, remote)
	if svc.PipelineRuns() != 1 {
		t.Fatalf("pipeline runs = %d", svc.PipelineRuns())
	}

	// The offline reference: the same seeded crawl of the same graph,
	// restored locally.
	_, offlineBin := offlineRestore(t, c, 5, 7)
	if !bytes.Equal(remoteRes.GraphBin, offlineBin) {
		t.Fatal("graphd-crawled job differs from offline crawl+restore at the same seed")
	}

	// An inline submission of the identical crawl is a different job id
	// (request-keyed vs content-keyed) but the same cache line: no second
	// pipeline run.
	inline, existing, err := svc.Submit(&JobSpec{Seed: 7, RC: 5, Crawl: crawlJSONBytes(t, c)})
	if err != nil {
		t.Fatal(err)
	}
	if existing {
		t.Fatal("inline submission unexpectedly matched the graphd job id")
	}
	inlineRes := waitDone(t, inline)
	if !inline.Status().Cached {
		t.Fatal("inline twin was not served from the result cache")
	}
	if !bytes.Equal(inlineRes.GraphBin, remoteRes.GraphBin) {
		t.Fatal("inline twin answer differs")
	}
	if svc.PipelineRuns() != 1 || svc.CacheHits() != 1 {
		t.Fatalf("pipeline runs = %d cache hits = %d, want 1 and 1",
			svc.PipelineRuns(), svc.CacheHits())
	}
}

// TestGraphdSourceFailure: an unreachable graphd fails the job with the
// transport error, not a hung or bogus result.
func TestGraphdSourceFailure(t *testing.T) {
	svc := newTestService(t, Config{})
	job, _, err := svc.Submit(&JobSpec{
		Seed:   1,
		Graphd: &GraphdSource{URL: "http://127.0.0.1:1", Fraction: 0.1, Retries: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-job.Done():
	case <-time.After(time.Minute):
		t.Fatal("failed crawl never finished the job")
	}
	if _, err := job.Result(); err == nil {
		t.Fatal("job against a dead graphd succeeded")
	}
	if st := job.Status(); st.State != StateFailed || st.Error == "" {
		t.Fatalf("status = %+v, want failed with an error", st)
	}
}

// TestFailedJobRetries: a failed job does not poison its content address —
// an identical resubmission replaces it with a fresh attempt, which
// succeeds once the transient cause (here: the graphd being down) passes.
func TestFailedJobRetries(t *testing.T) {
	g, _ := testGraphAndCrawl(t, 7, 0.12)
	// Reserve a port, then shut it so the first attempt gets connection
	// refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	svc := newTestService(t, Config{})
	spec := &JobSpec{Seed: 7, RC: 5, Graphd: &GraphdSource{URL: "http://" + addr, Fraction: 0.12, Retries: 1}}
	job, _, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	if !job.retryable() {
		t.Fatal("job against a dead port did not fail")
	}

	// The graphd comes back on the same address; the identical submission
	// must be a fresh job, not the cached failure.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	ts := httptest.NewUnstartedServer(oracle.NewServer(g, oracle.ServerConfig{}).Handler())
	ts.Listener.Close()
	ts.Listener = ln2
	ts.Start()
	defer ts.Close()

	retry, existing, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if existing || retry == job {
		t.Fatal("resubmission dedumped onto the failed job instead of retrying")
	}
	if retry.ID != job.ID {
		t.Fatal("retry changed the job identity")
	}
	res := waitDone(t, retry)
	if found, ok := svc.Job(job.ID); !ok || found != retry {
		t.Fatal("job table does not point at the successful retry")
	}
	if len(res.GraphBin) == 0 {
		t.Fatal("retry produced no graph")
	}
}

// TestCacheDirPersistence: a restarted service answers an old submission
// from the on-disk cache without recomputing it.
func TestCacheDirPersistence(t *testing.T) {
	dir := t.TempDir()
	_, c := testGraphAndCrawl(t, 3, 0.15)
	spec := &JobSpec{Seed: 3, RC: 5, Crawl: crawlJSONBytes(t, c)}

	svc1 := newTestService(t, Config{CacheDir: dir})
	job1, _, err := svc1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	res1 := waitDone(t, job1)
	svc1.Close()

	svc2 := newTestService(t, Config{CacheDir: dir})
	job2, existing, err := svc2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if existing {
		t.Fatal("fresh service knew the job before running it")
	}
	res2 := waitDone(t, job2)
	if !job2.Status().Cached {
		t.Fatal("restarted service recomputed instead of reading the disk cache")
	}
	if svc2.PipelineRuns() != 0 || svc2.CacheHits() != 1 {
		t.Fatalf("restart: pipeline runs = %d cache hits = %d, want 0 and 1",
			svc2.PipelineRuns(), svc2.CacheHits())
	}
	if !bytes.Equal(res1.GraphBin, res2.GraphBin) {
		t.Fatal("disk cache returned different bytes")
	}
	if res1.Meta != res2.Meta {
		t.Fatalf("disk cache meta %+v != original %+v", res2.Meta, res1.Meta)
	}
}

// TestQueueBackpressureAndShutdown: a full queue rejects with ErrQueueFull
// without registering a ghost job; a closed service rejects with
// ErrClosed.
func TestQueueBackpressureAndShutdown(t *testing.T) {
	_, c := testGraphAndCrawl(t, 3, 0.1)
	raw := crawlJSONBytes(t, c)

	gate := make(chan struct{})
	started := make(chan struct{}, 8)
	svc, err := New(Config{Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	svc.testBeforeRun = func(*Job) {
		started <- struct{}{}
		<-gate
	}

	// Job A occupies the worker...
	a, _, err := svc.Submit(&JobSpec{Seed: 1, RC: 5, Crawl: raw})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	// ...job B fills the queue...
	if _, _, err := svc.Submit(&JobSpec{Seed: 2, RC: 5, Crawl: raw}); err != nil {
		t.Fatal(err)
	}
	// ...and job C bounces.
	if _, _, err := svc.Submit(&JobSpec{Seed: 3, RC: 5, Crawl: raw}); err != ErrQueueFull {
		t.Fatalf("overflow submission: err = %v, want ErrQueueFull", err)
	}
	// The bounced job left no trace, so a retry after drain succeeds.
	if _, ok := svc.Job(mustKey(t, &JobSpec{Seed: 3, RC: 5, Crawl: raw})); ok {
		t.Fatal("rejected submission registered a job")
	}

	close(gate)
	waitDone(t, a)
	svc.Close()
	if _, _, err := svc.Submit(&JobSpec{Seed: 4, RC: 5, Crawl: raw}); err != ErrClosed {
		t.Fatalf("post-close submission: err = %v, want ErrClosed", err)
	}
	// Close is idempotent.
	svc.Close()
}
