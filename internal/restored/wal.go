package restored

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

// The job WAL makes accepted work durable: every submission is appended
// to a write-ahead journal under CacheDir *before* it becomes runnable,
// and every terminal transition (done, failed, cancelled) appends a
// tombstone. A daemon killed mid-pipeline therefore loses nothing — on
// startup the journal is replayed, ids already answered by the result
// cache are skipped, and the rest re-enqueue. Replay is idempotent by
// construction: the recorded id IS the content address, and a replayed
// spec re-resolves to the same id or is rejected as corrupt.
//
// Format: JSON lines, each prefixed by the IEEE CRC32 of its payload in
// fixed-width hex — "crc32hex payload\n". The first record is a header
// pinning the format version. Like the oracle crawl journal, a torn final
// record (the crash-mid-append case an fsynced append-only file can
// produce) is tolerated and truncated away; damage anywhere earlier is a
// hard error, because silently dropping interior records would silently
// drop accepted jobs.
//
// Everything in the WAL is recovery bookkeeping — wall-clock-only state.
// Nothing here feeds the content address: the id stored in a record was
// computed by resolveSpec before the WAL ever saw the job, and replay
// re-derives it from the spec alone (TestTimingFieldsOutsideContentAddress
// pins the schema split).

// walName is the journal's filename under Config.CacheDir.
const walName = "jobs.wal"

// walVersion stamps the record format. Bump on incompatible changes; a
// mismatched journal is rejected, not misread.
const walVersion = 1

// WAL record types.
const (
	walTypeHeader   = "h"
	walTypeAccepted = "a"
	walTypeFinished = "f"
)

// walRecord is one journal line. Exactly one shape per type:
// header {t, version}; accepted {t, id, spec}; finished {t, id, state}.
type walRecord struct {
	T       string `json:"t"`
	Version int    `json:"version,omitempty"`
	ID      string `json:"id,omitempty"`
	// State is the terminal state of a finished record: StateDone,
	// StateFailed or StateCancelled. Failed and cancelled tombstones keep
	// crashed retries honest: a job the operator cancelled must not rise
	// from the dead on restart.
	State string `json:"state,omitempty"`
	// Spec is the accepted submission, normalized: crawl bytes canonical,
	// method and rc resolved. Replaying it through resolveSpec must
	// reproduce ID exactly — that equality is checked, so a corrupted or
	// stale record can only be skipped, never run as the wrong job.
	Spec *JobSpec `json:"spec,omitempty"`
}

// appendWALLine renders one record line: crc32hex, space, payload, \n.
func appendWALLine(b []byte, rec walRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	b = fmt.Appendf(b, "%08x ", crc32.ChecksumIEEE(payload))
	b = append(b, payload...)
	return append(b, '\n'), nil
}

// decodeWALLine parses one journal line (without its trailing newline).
func decodeWALLine(line []byte) (walRecord, error) {
	var rec walRecord
	if len(line) < 10 || line[8] != ' ' {
		return rec, fmt.Errorf("malformed record framing")
	}
	var sum uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &sum); err != nil {
		return rec, fmt.Errorf("malformed checksum: %v", err)
	}
	payload := line[9:]
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return rec, fmt.Errorf("checksum mismatch: recorded %08x, computed %08x", sum, got)
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, fmt.Errorf("decoding record: %v", err)
	}
	switch rec.T {
	case walTypeHeader, walTypeAccepted, walTypeFinished:
		return rec, nil
	default:
		return rec, fmt.Errorf("unknown record type %q", rec.T)
	}
}

// parseWAL replays a journal image: the records of the intact prefix and
// the byte offset that prefix ends at. A malformed or CRC-failing segment
// is tolerated — reported via goodEnd < len(data) with a nil error — only
// when nothing but that segment follows it (a torn tail, the shape a
// crash mid-append leaves). Malformed content with records after it is
// corruption, not tearing, and errors out.
func parseWAL(data []byte) (recs []walRecord, goodEnd int, err error) {
	for goodEnd < len(data) {
		rest := data[goodEnd:]
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			// Unterminated tail: torn by definition (appends end in \n).
			return recs, goodEnd, nil
		}
		rec, derr := decodeWALLine(rest[:nl])
		if derr != nil {
			if goodEnd+nl+1 >= len(data) {
				return recs, goodEnd, nil // damaged final record: torn tail
			}
			return recs, goodEnd, fmt.Errorf("restored: wal record at byte %d: %v", goodEnd, derr)
		}
		if len(recs) == 0 {
			if rec.T != walTypeHeader {
				return nil, 0, fmt.Errorf("restored: wal does not start with a header record")
			}
			if rec.Version != walVersion {
				return nil, 0, fmt.Errorf("restored: wal version %d, want %d", rec.Version, walVersion)
			}
		}
		recs = append(recs, rec)
		goodEnd += nl + 1
	}
	return recs, goodEnd, nil
}

// walJournal is the open journal: an append-only file whose every write
// is CRC-framed and fsynced before the job it records becomes runnable.
type walJournal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// openWAL opens (creating if absent) the journal at path, replays it, and
// truncates a torn tail so appends continue from the last intact record.
// The returned records exclude the header.
func openWAL(path string) (*walJournal, []walRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, err
	}
	recs, goodEnd, err := parseWAL(data)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	w := &walJournal{f: f, path: path}
	if err := f.Truncate(int64(goodEnd)); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(int64(goodEnd), 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	if len(recs) == 0 {
		if err := w.append(walRecord{T: walTypeHeader, Version: walVersion}); err != nil {
			f.Close()
			return nil, nil, err
		}
		return w, nil, nil
	}
	return w, recs[1:], nil
}

// append writes one record and syncs it to stable storage. Durability
// before visibility: Submit calls this before the job can reach a worker,
// so a job that might produce a terminal record always has its accepted
// record on disk first.
func (w *walJournal) append(rec walRecord) error {
	line, err := appendWALLine(nil, rec)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(line); err != nil {
		return err
	}
	return w.f.Sync()
}

// rewrite compacts the journal to a header plus recs, atomically
// (write-temp, fsync, rename — the cache's own persistence idiom). Called
// at startup after replay, when every record for a finished job is dead
// weight; must not race appends.
func (w *walJournal) rewrite(recs []walRecord) error {
	var buf []byte
	var err error
	if buf, err = appendWALLine(buf, walRecord{T: walTypeHeader, Version: walVersion}); err != nil {
		return err
	}
	for _, rec := range recs {
		if buf, err = appendWALLine(buf, rec); err != nil {
			return err
		}
	}
	tmp := w.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, w.path); err != nil {
		os.Remove(tmp)
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	old := w.f
	nf, err := os.OpenFile(w.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	w.f = nf
	return old.Close()
}

// Close releases the journal file.
func (w *walJournal) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// walPath locates the journal under a cache dir.
func walPath(cacheDir string) string { return filepath.Join(cacheDir, walName) }
