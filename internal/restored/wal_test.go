package restored

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// crashWAL simulates the journal a killed daemon leaves behind: a header
// plus the given records, written through the real append path (CRC
// framing, fsync) and then abandoned without any shutdown bookkeeping.
func crashWAL(t *testing.T, dir string, recs ...walRecord) {
	t.Helper()
	w, existing, err := openWAL(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(existing) != 0 {
		t.Fatalf("fresh wal replayed %d records", len(existing))
	}
	for _, rec := range recs {
		if err := w.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWALReplayRunsAcceptedJob is the crash-recovery contract: a job whose
// accepted record survived a crash is re-enqueued on startup, runs to
// completion, and produces bytes identical to the offline pipeline — and a
// second restart does not run it again, because the result cache now
// answers for the id.
func TestWALReplayRunsAcceptedJob(t *testing.T) {
	_, c := testGraphAndCrawl(t, 3, 0.15)
	_, offlineBin := offlineRestore(t, c, 5, 3)
	spec := &JobSpec{Seed: 3, RC: 5, Crawl: crawlJSONBytes(t, c)}
	ps, err := resolveSpec(spec)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	crashWAL(t, dir, walRecord{T: walTypeAccepted, ID: ps.key, Spec: ps.walSpec()})

	svc := newTestService(t, Config{CacheDir: dir})
	job, ok := svc.Job(ps.key)
	if !ok {
		t.Fatal("accepted job was not replayed from the wal")
	}
	if got := svc.replayed.Value(); got != 1 {
		t.Fatalf("replayed counter = %d, want 1", got)
	}
	res := waitDone(t, job)
	if !bytes.Equal(res.GraphBin, offlineBin) {
		t.Fatal("replayed job's graph differs from the offline restore")
	}
	svc.Close()

	// Second restart: the terminal record (and the cache) make replay a
	// no-op, and a resubmission is a pipeline-free cache hit.
	svc2 := newTestService(t, Config{CacheDir: dir})
	if _, ok := svc2.Job(ps.key); ok {
		t.Fatal("finished job was replayed again")
	}
	if got := svc2.replayed.Value(); got != 0 {
		t.Fatalf("second-start replayed counter = %d, want 0", got)
	}
	job2, existing, err := svc2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if existing {
		t.Fatal("resubmission matched a job in the fresh table")
	}
	res2 := waitDone(t, job2)
	if !bytes.Equal(res2.GraphBin, res.GraphBin) {
		t.Fatal("post-restart resubmission differs from the recovered result")
	}
	if got := svc2.PipelineRuns(); got != 0 {
		t.Fatalf("resubmission ran the pipeline %d time(s), want cache hit", got)
	}
}

// TestWALReplaySkipsSettledAndCorrupt: terminal records suppress replay,
// and an accepted record whose spec does not re-resolve to its recorded id
// is dropped — never run as the wrong job.
func TestWALReplaySkipsSettledAndCorrupt(t *testing.T) {
	_, c := testGraphAndCrawl(t, 3, 0.15)
	ps, err := resolveSpec(&JobSpec{Seed: 3, RC: 5, Crawl: crawlJSONBytes(t, c)})
	if err != nil {
		t.Fatal(err)
	}
	for name, recs := range map[string][]walRecord{
		"done": {
			{T: walTypeAccepted, ID: ps.key, Spec: ps.walSpec()},
			{T: walTypeFinished, ID: ps.key, State: StateDone},
		},
		"cancelled": {
			{T: walTypeAccepted, ID: ps.key, Spec: ps.walSpec()},
			{T: walTypeFinished, ID: ps.key, State: StateCancelled},
		},
		"key mismatch": {
			{T: walTypeAccepted, ID: "00" + ps.key[2:], Spec: ps.walSpec()},
		},
		"no spec": {
			{T: walTypeAccepted, ID: ps.key},
		},
	} {
		dir := t.TempDir()
		crashWAL(t, dir, recs...)
		svc := newTestService(t, Config{CacheDir: dir})
		if got := svc.replayed.Value(); got != 0 {
			t.Errorf("%s: replayed %d job(s), want 0", name, got)
		}
		svc.Close()
	}
}

// TestWALTornTail pins the torn-tail policy shared with the oracle crawl
// journal: a crash mid-append may leave a damaged final record, which is
// tolerated and truncated away; damage anywhere earlier is corruption and
// errors out.
func TestWALTornTail(t *testing.T) {
	ps, err := resolveSpec(&JobSpec{Seed: 3, Graphd: &GraphdSource{URL: "http://x", Fraction: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	rec := walRecord{T: walTypeAccepted, ID: ps.key, Spec: ps.walSpec()}

	intact := func(t *testing.T) ([]byte, string) {
		dir := t.TempDir()
		crashWAL(t, dir, rec, rec)
		data, err := os.ReadFile(walPath(dir))
		if err != nil {
			t.Fatal(err)
		}
		return data, dir
	}

	t.Run("unterminated tail", func(t *testing.T) {
		data, dir := intact(t)
		if err := os.WriteFile(walPath(dir), append(data, []byte("deadbeef {half a rec")...), 0o644); err != nil {
			t.Fatal(err)
		}
		w, recs, err := openWAL(walPath(dir))
		if err != nil {
			t.Fatalf("torn tail rejected: %v", err)
		}
		defer w.Close()
		if len(recs) != 2 {
			t.Fatalf("replayed %d records, want the 2 intact ones", len(recs))
		}
		// The tear is truncated, so the journal is appendable again.
		if err := w.append(rec); err != nil {
			t.Fatal(err)
		}
		after, err := os.ReadFile(walPath(dir))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(after, data) || bytes.Contains(after, []byte("half a rec")) {
			t.Fatal("torn tail survived reopen")
		}
	})

	t.Run("corrupt final record", func(t *testing.T) {
		data, dir := intact(t)
		flipped := append([]byte(nil), data...)
		flipped[len(flipped)-2] ^= 0x01 // damage the last record's payload
		if err := os.WriteFile(walPath(dir), flipped, 0o644); err != nil {
			t.Fatal(err)
		}
		w, recs, err := openWAL(walPath(dir))
		if err != nil {
			t.Fatalf("damaged final record rejected: %v", err)
		}
		w.Close()
		if len(recs) != 1 {
			t.Fatalf("replayed %d records, want 1 (the intact prefix)", len(recs))
		}
	})

	t.Run("interior corruption", func(t *testing.T) {
		data, dir := intact(t)
		// Damage the FIRST accepted record: content follows, so this is
		// not a tear.
		lines := bytes.SplitAfter(data, []byte("\n"))
		lines[1][len(lines[1])-2] ^= 0x01
		if err := os.WriteFile(walPath(dir), bytes.Join(lines, nil), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := openWAL(walPath(dir)); err == nil {
			t.Fatal("interior corruption tolerated")
		}
	})

	t.Run("version mismatch", func(t *testing.T) {
		dir := t.TempDir()
		line, err := appendWALLine(nil, walRecord{T: walTypeHeader, Version: walVersion + 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(walPath(dir), line, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := openWAL(walPath(dir)); err == nil {
			t.Fatal("future-version wal accepted")
		}
	})
}

// TestWALCompaction: startup rewrites the journal down to the live
// backlog, so settled jobs stop being re-parsed forever.
func TestWALCompaction(t *testing.T) {
	_, c := testGraphAndCrawl(t, 3, 0.15)
	ps, err := resolveSpec(&JobSpec{Seed: 3, RC: 5, Crawl: crawlJSONBytes(t, c)})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	crashWAL(t, dir,
		walRecord{T: walTypeAccepted, ID: ps.key, Spec: ps.walSpec()},
		walRecord{T: walTypeFinished, ID: ps.key, State: StateFailed},
		walRecord{T: walTypeAccepted, ID: ps.key, Spec: ps.walSpec()},
	)
	svc := newTestService(t, Config{CacheDir: dir})
	if got := svc.replayed.Value(); got != 1 {
		t.Fatalf("replayed %d job(s), want 1 (re-accepted after failure)", got)
	}
	waitDone(t, mustJob(t, svc, ps.key))
	svc.Close()

	data, err := os.ReadFile(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	recs, goodEnd, err := parseWAL(data)
	if err != nil || goodEnd != len(data) {
		t.Fatalf("compacted wal damaged: goodEnd=%d len=%d err=%v", goodEnd, len(data), err)
	}
	// header + compacted accepted + the run's terminal record.
	if len(recs) != 3 || recs[1].T != walTypeAccepted || recs[2].T != walTypeFinished {
		t.Fatalf("compacted wal shape: %+v", recs)
	}
}

// mustJob looks up a job the test knows exists.
func mustJob(t *testing.T, svc *Service, id string) *Job {
	t.Helper()
	j, ok := svc.Job(id)
	if !ok {
		t.Fatalf("job %s not in table", shortKey(id))
	}
	return j
}

// FuzzJobJournal hammers parseWAL with arbitrary bytes: it must never
// panic, never claim an intact prefix longer than the input, and always
// tolerate a re-append after truncation (the recovery path a real torn
// journal takes).
func FuzzJobJournal(f *testing.F) {
	ps, err := resolveSpec(&JobSpec{Seed: 9, Graphd: &GraphdSource{URL: "http://x", Fraction: 0.2}})
	if err != nil {
		f.Fatal(err)
	}
	var seed []byte
	for _, rec := range []walRecord{
		{T: walTypeHeader, Version: walVersion},
		{T: walTypeAccepted, ID: ps.key, Spec: ps.walSpec()},
		{T: walTypeFinished, ID: ps.key, State: StateDone},
	} {
		if seed, err = appendWALLine(seed, rec); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-3])                      // torn tail
	f.Add([]byte(nil))                             // empty journal
	f.Add([]byte("deadbeef {}\n"))                 // bad checksum
	f.Add(bytes.Repeat([]byte("00000000 \n"), 40)) // framing edge

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, goodEnd, err := parseWAL(data)
		if goodEnd < 0 || goodEnd > len(data) {
			t.Fatalf("goodEnd %d out of [0,%d]", goodEnd, len(data))
		}
		if err != nil {
			return
		}
		if len(recs) > 0 && recs[0].T != walTypeHeader {
			t.Fatal("parsed journal does not start with a header")
		}
		// The intact prefix must re-parse to the same records with no
		// torn tail — parseWAL is a fixed point on its own output.
		again, end2, err2 := parseWAL(data[:goodEnd])
		if err2 != nil || end2 != goodEnd || len(again) != len(recs) {
			t.Fatalf("intact prefix re-parse: %d recs end %d err %v, want %d recs end %d",
				len(again), end2, err2, len(recs), goodEnd)
		}
		// And a real reopen of those bytes truncates + appends cleanly.
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, _, err := openWAL(walPath(dir))
		if err != nil {
			return // interior corruption: rejecting is the contract
		}
		defer w.Close()
		if err := w.append(walRecord{T: walTypeFinished, ID: "x", State: StateDone}); err != nil {
			t.Fatal(err)
		}
		after, err := os.ReadFile(walPath(dir))
		if err != nil {
			t.Fatal(err)
		}
		if _, end3, err3 := parseWAL(after); err3 != nil || end3 != len(after) {
			t.Fatalf("journal damaged after reopen+append: end %d/%d err %v", end3, len(after), err3)
		}
	})
}
