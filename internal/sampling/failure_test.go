package sampling

import (
	"testing"

	"sgr/internal/graph"
)

// flakyAccess simulates a misbehaving social-network API: it returns a
// different (shuffled, possibly truncated) neighbor slice on every call for
// the same node. The crawler layer must be immune because it caches the
// first answer per node — the paper's access model assumes a static graph,
// and the recorder enforces that view.
type flakyAccess struct {
	g     *graph.Graph
	calls int
}

func (f *flakyAccess) NeighborsOf(u int) []int {
	f.calls++
	nb := append([]int(nil), f.g.Neighbors(u)...)
	// Rotate deterministically by call count to vary the answer.
	if len(nb) > 1 {
		k := f.calls % len(nb)
		nb = append(nb[k:], nb[:k]...)
	}
	return nb
}

func (f *flakyAccess) NumNodes() int { return f.g.N() }

func TestRecorderCachesFirstAnswer(t *testing.T) {
	g := testGraph(t)
	fa := &flakyAccess{g: g}
	c, err := RandomWalk(fa, 0, 0.10, rng(50))
	if err != nil {
		t.Fatal(err)
	}
	// Every node's recorded neighbor list must be internally consistent:
	// same length as the true degree.
	for u, nb := range c.Neighbors {
		if len(nb) != g.Degree(u) {
			t.Fatalf("node %d: recorded %d neighbors, true degree %d", u, len(nb), g.Degree(u))
		}
	}
	// Walk steps must follow recorded neighbor lists.
	for i := 0; i+1 < len(c.Walk); i++ {
		u, v := c.Walk[i], c.Walk[i+1]
		found := false
		for _, w := range c.Neighbors[u] {
			if w == v {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("walk step %d->%d not in recorded neighbors", u, v)
		}
	}
}

// asymmetricAccess reports an edge from one side only, as social APIs
// sometimes do for pending/blocked relationships.
type asymmetricAccess struct {
	g *graph.Graph
}

func (a *asymmetricAccess) NeighborsOf(u int) []int {
	nb := a.g.Neighbors(u)
	if u == 0 {
		// Node 0 additionally claims node 1 as a neighbor.
		return append(append([]int(nil), nb...), 1)
	}
	return nb
}

func (a *asymmetricAccess) NumNodes() int { return a.g.N() }

func TestBuildSubgraphToleratesAsymmetricReports(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	g.AddEdge(1, 3)
	aa := &asymmetricAccess{g: g}
	rec := newRecorder(aa)
	rec.query(0)
	rec.query(1)
	c := rec.crawl
	s := BuildSubgraph(c)
	// The phantom edge 0-1 appears once (deduplicated), and the build
	// must not panic or double count.
	if got := s.Graph.Multiplicity(s.Index[0], s.Index[1]); got != 1 {
		t.Fatalf("phantom edge multiplicity %d want 1", got)
	}
	if err := s.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBFSOnLineGraphExhaustsComponent(t *testing.T) {
	// BFS must stop cleanly when the component is smaller than the budget.
	g := graph.New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	// nodes 3..5 unreachable
	c, err := BFS(NewGraphAccess(g), 0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQueried() != 3 {
		t.Fatalf("BFS queried %d want 3 (component exhausted)", c.NumQueried())
	}
}

func TestSnowballOnComponentSmallerThanBudget(t *testing.T) {
	g := graph.New(5)
	g.AddEdge(0, 1)
	c, err := Snowball(NewGraphAccess(g), 0, 3, 1.0, rng(51))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQueried() != 2 {
		t.Fatalf("snowball queried %d want 2", c.NumQueried())
	}
}

func TestRandomWalkFullFractionCoversConnectedGraph(t *testing.T) {
	g := testGraph(t)
	c, err := RandomWalk(NewGraphAccess(g), 0, 1.0, rng(52))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQueried() != g.N() {
		t.Fatalf("full walk queried %d of %d", c.NumQueried(), g.N())
	}
	s := BuildSubgraph(c)
	if s.Graph.N() != g.N() || s.Graph.M() != g.M() {
		t.Fatalf("full-coverage subgraph must equal the graph: n=%d m=%d", s.Graph.N(), s.Graph.M())
	}
}
