package sampling

import (
	"fmt"
	"math/rand/v2"
)

// FrontierSampling performs the multidimensional random walk of Ribeiro &
// Towsley (IMC 2010), cited in the paper's related work: dim walkers share
// one query budget; at each step a walker is chosen with probability
// proportional to its current node's degree and advances to a uniform
// random neighbor. The sample sequence (the Walk field) is the sequence of
// advanced-from nodes, which is degree-biased exactly like a simple random
// walk in steady state, so the package estimators apply unchanged — while
// being robust to disconnected or loosely connected components.
//
// Seeds are the initial walker positions; len(seeds) sets the dimension.
func FrontierSampling(access Access, seeds []int, fraction float64, r *rand.Rand) (*Crawl, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("sampling: frontier sampling needs at least one seed")
	}
	budget, err := budgetFromFraction(access, fraction)
	if err != nil {
		return nil, err
	}
	rec := newRecorder(access)
	walkers := append([]int(nil), seeds...)
	degs := make([]int, len(walkers))
	total := 0
	for i, u := range walkers {
		d := len(rec.query(u))
		degs[i] = d
		total += d
	}
	if total == 0 {
		return nil, fmt.Errorf("sampling: all frontier seeds are isolated")
	}
	for rec.numQueried() < budget {
		// Pick a walker with probability proportional to its degree.
		x := r.IntN(total)
		wi := 0
		for x >= degs[wi] {
			x -= degs[wi]
			wi++
		}
		u := walkers[wi]
		nb := rec.neighbors[u]
		if len(nb) == 0 {
			// Teleport a stuck walker to a random queried node.
			q := rec.crawl.Queried
			u = q[r.IntN(len(q))]
			nb = rec.query(u)
			if len(nb) == 0 {
				return nil, fmt.Errorf("sampling: frontier walker stuck at isolated node %d", u)
			}
		}
		rec.crawl.Walk = append(rec.crawl.Walk, u)
		v := nb[r.IntN(len(nb))]
		dv := len(rec.query(v))
		total += dv - degs[wi]
		walkers[wi] = v
		degs[wi] = dv
	}
	return rec.crawl, nil
}
