package sampling

import (
	"testing"

	"sgr/internal/graph"
)

func TestFrontierSamplingBudget(t *testing.T) {
	g := testGraph(t)
	c, err := FrontierSampling(NewGraphAccess(g), []int{0, 1, 2}, 0.2, rng(30))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQueried() < int(0.2*float64(g.N())) {
		t.Fatalf("frontier underqueried: %d", c.NumQueried())
	}
	if len(c.Walk) == 0 {
		t.Fatal("frontier sampling must emit a walk sequence")
	}
}

func TestFrontierSamplingHandlesDisconnected(t *testing.T) {
	// Two disjoint triangles; walkers seeded in both components can cover
	// both, which a single random walk cannot.
	g := graph.New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(5, 3)
	c, err := FrontierSampling(NewGraphAccess(g), []int{0, 3}, 1.0, rng(31))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQueried() != 6 {
		t.Fatalf("frontier should cover both components: queried %d", c.NumQueried())
	}
}

func TestFrontierSamplingErrors(t *testing.T) {
	g := testGraph(t)
	if _, err := FrontierSampling(NewGraphAccess(g), nil, 0.1, rng(32)); err == nil {
		t.Error("want error for no seeds")
	}
	iso := graph.New(2)
	if _, err := FrontierSampling(NewGraphAccess(iso), []int{0}, 1.0, rng(33)); err == nil {
		t.Error("want error for all-isolated seeds")
	}
}

func TestFrontierWalkStepsAreEdges(t *testing.T) {
	g := testGraph(t)
	c, err := FrontierSampling(NewGraphAccess(g), []int{0, 5}, 0.15, rng(34))
	if err != nil {
		t.Fatal(err)
	}
	// Every walk entry must be a queried node with a recorded neighbor list.
	for _, u := range c.Walk {
		if _, ok := c.Neighbors[u]; !ok {
			t.Fatalf("walk node %d not queried", u)
		}
	}
}
