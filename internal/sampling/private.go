package sampling

import (
	"fmt"
	"math/rand/v2"
)

// PrivateAccess wraps an Access and makes a subset of nodes private:
// querying them yields no neighbor data, as in real social networks where
// users hide their friend lists. This models the setting of Nakajima &
// Shudo (KDD 2020), cited in the paper's related work.
type PrivateAccess struct {
	inner   Access
	private map[int]struct{}
}

// NewPrivateAccess marks the given nodes private.
func NewPrivateAccess(inner Access, private []int) *PrivateAccess {
	p := &PrivateAccess{inner: inner, private: make(map[int]struct{}, len(private))}
	for _, u := range private {
		p.private[u] = struct{}{}
	}
	return p
}

// NeighborsOf returns nil for private nodes (the query fails) and the true
// neighbor list otherwise.
func (p *PrivateAccess) NeighborsOf(u int) []int {
	if _, ok := p.private[u]; ok {
		return nil
	}
	return p.inner.NeighborsOf(u)
}

// NumNodes implements Access.
func (p *PrivateAccess) NumNodes() int { return p.inner.NumNodes() }

// IsPrivate reports whether u is private.
func (p *PrivateAccess) IsPrivate(u int) bool {
	_, ok := p.private[u]
	return ok
}

// PrivateAwareWalk random-walks a graph containing private nodes: when the
// walk draws a private neighbor it marks the node and redraws among the
// remaining neighbors, never stepping onto nodes whose lists are hidden.
// The sampling list contains public nodes only. Private neighbors still
// appear inside neighbor lists (they are visible, just not queryable), so
// the induced subgraph may contain them as visible nodes.
//
// The walk fails if it reaches a public node all of whose neighbors are
// private (an isolated public region).
func PrivateAwareWalk(access *PrivateAccess, seed int, fraction float64, r *rand.Rand) (*Crawl, error) {
	if access.IsPrivate(seed) {
		return nil, fmt.Errorf("sampling: seed node %d is private", seed)
	}
	budget, err := budgetFromFraction(access, fraction)
	if err != nil {
		return nil, err
	}
	rec := newRecorder(access)
	cur := seed
	for {
		nb := rec.query(cur)
		rec.crawl.Walk = append(rec.crawl.Walk, cur)
		if rec.numQueried() >= budget {
			break
		}
		// Draw among non-private neighbors.
		candidates := make([]int, 0, len(nb))
		for _, v := range nb {
			if !access.IsPrivate(v) {
				candidates = append(candidates, v)
			}
		}
		if len(candidates) == 0 {
			return nil, fmt.Errorf("sampling: node %d has no public neighbors", cur)
		}
		cur = candidates[r.IntN(len(candidates))]
	}
	return rec.crawl, nil
}
