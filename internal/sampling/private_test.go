package sampling

import (
	"testing"

	"sgr/internal/graph"
)

func TestPrivateAccessHidesNeighborLists(t *testing.T) {
	g := testGraph(t)
	pa := NewPrivateAccess(NewGraphAccess(g), []int{3, 5})
	if nb := pa.NeighborsOf(3); nb != nil {
		t.Fatalf("private node leaked neighbors: %v", nb)
	}
	if nb := pa.NeighborsOf(0); len(nb) != g.Degree(0) {
		t.Fatalf("public node neighbors wrong: %d", len(nb))
	}
	if !pa.IsPrivate(5) || pa.IsPrivate(0) {
		t.Fatal("IsPrivate wrong")
	}
}

func TestPrivateAwareWalkAvoidsPrivateNodes(t *testing.T) {
	g := testGraph(t)
	private := []int{2, 7, 11, 13, 17, 19, 23}
	pa := NewPrivateAccess(NewGraphAccess(g), private)
	c, err := PrivateAwareWalk(pa, 0, 0.1, rng(60))
	if err != nil {
		t.Fatal(err)
	}
	privSet := map[int]bool{}
	for _, u := range private {
		privSet[u] = true
	}
	for _, u := range c.Walk {
		if privSet[u] {
			t.Fatalf("walk stepped onto private node %d", u)
		}
	}
	if c.NumQueried() < int(0.1*float64(g.N())) {
		t.Fatalf("walk underqueried: %d", c.NumQueried())
	}
	// Private nodes may still be visible in the subgraph.
	sub := BuildSubgraph(c)
	if err == nil && sub.Graph.N() == 0 {
		t.Fatal("empty subgraph")
	}
}

func TestPrivateAwareWalkErrors(t *testing.T) {
	g := testGraph(t)
	pa := NewPrivateAccess(NewGraphAccess(g), []int{0})
	if _, err := PrivateAwareWalk(pa, 0, 0.1, rng(61)); err == nil {
		t.Fatal("want error for private seed")
	}
	// Star where all leaves are private: walk from the hub is stuck.
	star := graph.New(4)
	star.AddEdge(0, 1)
	star.AddEdge(0, 2)
	star.AddEdge(0, 3)
	pa2 := NewPrivateAccess(NewGraphAccess(star), []int{1, 2, 3})
	if _, err := PrivateAwareWalk(pa2, 0, 1.0, rng(62)); err == nil {
		t.Fatal("want error when all neighbors are private")
	}
}

func TestPrivateAwareWalkFullPublicGraphMatchesBudget(t *testing.T) {
	g := testGraph(t)
	pa := NewPrivateAccess(NewGraphAccess(g), nil)
	c, err := PrivateAwareWalk(pa, 0, 0.2, rng(63))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQueried() != int(0.2*float64(g.N())) {
		t.Fatalf("queried %d", c.NumQueried())
	}
}
