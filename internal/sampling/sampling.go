// Package sampling implements the paper's graph-access model (Sec. III-A)
// and the crawling methods compared in the evaluation: simple random walk
// (Sec. III-B), breadth-first search, snowball sampling, and forest fire
// sampling (Sec. V-D), plus the Metropolis–Hastings and non-backtracking
// random walks discussed in related work.
//
// Crawlers interact with the hidden graph only through the Access interface:
// querying a node returns its neighbor list, and nothing else about the graph
// is observable. Every crawler records the set of queried nodes together
// with their neighbor lists — the "sampling list" L of the paper — from which
// the induced subgraph G' is constructed.
package sampling

import (
	"fmt"
	"math"
	"math/rand/v2"

	"sgr/internal/graph"
)

// Access is the restricted interface to the hidden social graph: one may
// query a node and receive its neighbor list, per the paper's access model.
type Access interface {
	// NeighborsOf returns the neighbor list of u (one entry per incident
	// edge endpoint). The returned slice must not be modified.
	NeighborsOf(u int) []int
	// NumNodes reports the total node count; crawlers use it only to convert
	// a target fraction of queried nodes into an absolute budget, mirroring
	// the paper's experimental protocol (it is NOT available to estimators).
	NumNodes() int
}

// Prefetcher is an optional Access extension implemented by batching
// transports (oracle.Client): Prefetch warms the neighbor cache for nodes
// the caller is certain to query, amortizing per-query round-trip overhead.
// It is purely advisory — budget accounting and crawl results are identical
// with and without it — and implementations must tolerate ids that are
// already cached or in flight.
type Prefetcher interface {
	Prefetch(ids []int)
}

// prefetcher drives frontier prefetching for the BFS-family crawlers. The
// crawlers hand it the frontier prefix that is certain to be queried — the
// first `remaining-budget` queue entries, which FIFO consumption reaches
// before the budget can run out — so a batching Access never fetches a node
// the crawl would not have paid for anyway.
type prefetcher struct {
	p  Prefetcher
	pf int // length of the queue prefix already prefetched
}

func newPrefetcher(access Access) prefetcher {
	p, _ := access.(Prefetcher)
	return prefetcher{p: p}
}

// extend prefetches the not-yet-prefetched part of the certain prefix.
func (ps *prefetcher) extend(queue []int, remaining int) {
	if ps.p == nil {
		return
	}
	want := len(queue)
	if remaining < want {
		want = remaining
	}
	if ps.pf < want {
		ps.p.Prefetch(queue[ps.pf:want])
		ps.pf = want
	}
}

// consume notes that the queue head was dequeued.
func (ps *prefetcher) consume() {
	if ps.pf > 0 {
		ps.pf--
	}
}

// GraphAccess adapts a concrete graph to the Access interface while counting
// distinct queried nodes, so experiments can report query budgets.
type GraphAccess struct {
	G       *graph.Graph
	queried map[int]struct{}
}

// NewGraphAccess wraps g.
func NewGraphAccess(g *graph.Graph) *GraphAccess {
	return &GraphAccess{G: g, queried: make(map[int]struct{})}
}

// NeighborsOf implements Access and records the query.
func (a *GraphAccess) NeighborsOf(u int) []int {
	a.queried[u] = struct{}{}
	return a.G.Neighbors(u)
}

// NumNodes implements Access.
func (a *GraphAccess) NumNodes() int { return a.G.N() }

// QueriedCount returns the number of distinct nodes queried so far.
func (a *GraphAccess) QueriedCount() int { return len(a.queried) }

// Crawl is the outcome of any crawling method: the order in which distinct
// nodes were first queried, their neighbor lists (the sampling list L), and,
// for walk-based methods, the full node sequence x_1..x_r including repeats.
type Crawl struct {
	// Queried lists distinct queried nodes in first-query order.
	Queried []int
	// Neighbors maps each queried node to its full neighbor list.
	Neighbors map[int][]int
	// Walk is the random-walk node sequence (nil for non-walk crawlers).
	Walk []int
}

// NumQueried returns the number of distinct queried nodes.
func (c *Crawl) NumQueried() int { return len(c.Queried) }

// DegreeOf returns the true degree of a queried node (its neighbor-list
// length) and whether the node was queried.
func (c *Crawl) DegreeOf(u int) (int, bool) {
	nb, ok := c.Neighbors[u]
	return len(nb), ok
}

type recorder struct {
	access    Access
	crawl     *Crawl
	neighbors map[int][]int
}

func newRecorder(access Access) *recorder {
	return &recorder{
		access:    access,
		neighbors: make(map[int][]int),
		crawl:     &Crawl{Neighbors: make(map[int][]int)},
	}
}

// query returns u's neighbors, recording the first query of each node.
func (rec *recorder) query(u int) []int {
	if nb, ok := rec.neighbors[u]; ok {
		return nb
	}
	nb := rec.access.NeighborsOf(u)
	rec.neighbors[u] = nb
	rec.crawl.Queried = append(rec.crawl.Queried, u)
	rec.crawl.Neighbors[u] = nb
	return nb
}

func (rec *recorder) numQueried() int { return len(rec.crawl.Queried) }

// budgetFromFraction converts a fraction of nodes into an absolute count,
// rounded to nearest and clamped to at least 1. Rounding matters: float
// products like 0.1*230 evaluate to 22.999999999999996, and truncation
// would silently hand the crawler one query fewer than the protocol fixes.
func budgetFromFraction(access Access, fraction float64) (int, error) {
	if fraction <= 0 || fraction > 1 {
		return 0, fmt.Errorf("sampling: fraction %v out of (0,1]", fraction)
	}
	b := int(math.Round(fraction * float64(access.NumNodes())))
	if b < 1 {
		b = 1
	}
	return b, nil
}

// RandomWalk performs a simple random walk from seed until the number of
// distinct queried nodes reaches fraction*N, returning the crawl whose Walk
// field holds the full sequence x_1, x_2, ... (Sec. III-B). Each step moves
// to a uniformly random neighbor of the current node.
func RandomWalk(access Access, seed int, fraction float64, r *rand.Rand) (*Crawl, error) {
	budget, err := budgetFromFraction(access, fraction)
	if err != nil {
		return nil, err
	}
	rec := newRecorder(access)
	cur := seed
	for {
		nb := rec.query(cur)
		rec.crawl.Walk = append(rec.crawl.Walk, cur)
		if rec.numQueried() >= budget {
			break
		}
		if len(nb) == 0 {
			return nil, fmt.Errorf("sampling: random walk stuck at isolated node %d", cur)
		}
		cur = nb[r.IntN(len(nb))]
	}
	return rec.crawl, nil
}

// SeededRandomWalk is the deterministic whole-crawl entry point shared by
// cmd/crawl and the restored job daemon's server-side crawls: it derives
// the walk RNG from seed exactly as `crawl -seed` does, draws the start
// node when seedNode < 0, and runs RandomWalk. Two callers handing the
// same Access contents, seedNode, fraction and seed get byte-identical
// crawls — the invariant that lets a daemon-crawled job be answered from
// the same content-addressed cache entry as a CLI-crawled one.
func SeededRandomWalk(access Access, seedNode int, fraction float64, seed uint64) (*Crawl, error) {
	r := rand.New(rand.NewPCG(seed, seed^0x27d4eb2f))
	n := access.NumNodes()
	start := seedNode
	if start < 0 {
		start = r.IntN(n)
	} else if start >= n {
		return nil, fmt.Errorf("sampling: seed node %d out of range [0,%d)", start, n)
	}
	return RandomWalk(access, start, fraction, r)
}

// RandomWalkSteps performs a simple random walk of exactly steps queries
// (with repetition in the sequence), regardless of the distinct-node count.
// Useful for estimator experiments that fix the walk length r.
func RandomWalkSteps(access Access, seed int, steps int, r *rand.Rand) (*Crawl, error) {
	if steps < 1 {
		return nil, fmt.Errorf("sampling: steps %d < 1", steps)
	}
	rec := newRecorder(access)
	cur := seed
	for i := 0; i < steps; i++ {
		nb := rec.query(cur)
		rec.crawl.Walk = append(rec.crawl.Walk, cur)
		if i == steps-1 {
			break
		}
		if len(nb) == 0 {
			return nil, fmt.Errorf("sampling: random walk stuck at isolated node %d", cur)
		}
		cur = nb[r.IntN(len(nb))]
	}
	return rec.crawl, nil
}

// BFS crawls breadth-first from seed, querying every discovered node until
// the distinct-query budget is exhausted.
func BFS(access Access, seed int, fraction float64) (*Crawl, error) {
	budget, err := budgetFromFraction(access, fraction)
	if err != nil {
		return nil, err
	}
	rec := newRecorder(access)
	visited := map[int]struct{}{seed: {}}
	queue := []int{seed}
	ps := newPrefetcher(access)
	for len(queue) > 0 && rec.numQueried() < budget {
		ps.extend(queue, budget-rec.numQueried())
		u := queue[0]
		queue = queue[1:]
		ps.consume()
		for _, v := range rec.query(u) {
			if _, ok := visited[v]; !ok {
				visited[v] = struct{}{}
				queue = append(queue, v)
			}
		}
	}
	return rec.crawl, nil
}

// Snowball crawls like BFS but explores at most k uniformly random distinct
// neighbors of each queried node (Goodman's snowball sampling; k = 50 in the
// paper's experiments).
func Snowball(access Access, seed, k int, fraction float64, r *rand.Rand) (*Crawl, error) {
	if k < 1 {
		return nil, fmt.Errorf("sampling: snowball k=%d < 1", k)
	}
	budget, err := budgetFromFraction(access, fraction)
	if err != nil {
		return nil, err
	}
	rec := newRecorder(access)
	visited := map[int]struct{}{seed: {}}
	queue := []int{seed}
	ps := newPrefetcher(access)
	for len(queue) > 0 && rec.numQueried() < budget {
		ps.extend(queue, budget-rec.numQueried())
		u := queue[0]
		queue = queue[1:]
		ps.consume()
		nb := rec.query(u)
		fresh := distinctUnvisited(nb, visited)
		r.Shuffle(len(fresh), func(i, j int) { fresh[i], fresh[j] = fresh[j], fresh[i] })
		if len(fresh) > k {
			fresh = fresh[:k]
		}
		for _, v := range fresh {
			visited[v] = struct{}{}
			queue = append(queue, v)
		}
	}
	return rec.crawl, nil
}

// ForestFire crawls with forest-fire sampling: from each burning node, a
// geometrically distributed number of unvisited neighbors (mean pf/(1-pf))
// catches fire. If the fire dies before the budget is reached, it revives
// from a uniformly random already-sampled node, as in Kurant et al.
func ForestFire(access Access, seed int, pf float64, fraction float64, r *rand.Rand) (*Crawl, error) {
	if pf <= 0 || pf >= 1 {
		return nil, fmt.Errorf("sampling: forest fire pf=%v out of (0,1)", pf)
	}
	budget, err := budgetFromFraction(access, fraction)
	if err != nil {
		return nil, err
	}
	rec := newRecorder(access)
	visited := map[int]struct{}{seed: {}}
	queue := []int{seed}
	ps := newPrefetcher(access)
	for rec.numQueried() < budget {
		if len(queue) == 0 {
			// Fire died: revive from a random sampled node.
			q := rec.crawl.Queried
			queue = append(queue, q[r.IntN(len(q))])
		}
		// Revived nodes are already queried, so the budget-bounded prefix
		// under-approximates what will be queried — prefetch never pays
		// for a node the crawl would not.
		ps.extend(queue, budget-rec.numQueried())
		u := queue[0]
		queue = queue[1:]
		ps.consume()
		nb := rec.query(u)
		fresh := distinctUnvisited(nb, visited)
		r.Shuffle(len(fresh), func(i, j int) { fresh[i], fresh[j] = fresh[j], fresh[i] })
		burn := geometric(pf, r)
		if burn > len(fresh) {
			burn = len(fresh)
		}
		for _, v := range fresh[:burn] {
			visited[v] = struct{}{}
			queue = append(queue, v)
		}
	}
	return rec.crawl, nil
}

// geometric samples the number of successes before the first failure with
// success probability pf, i.e. a geometric variate with mean pf/(1-pf).
func geometric(pf float64, r *rand.Rand) int {
	n := 0
	for r.Float64() < pf {
		n++
	}
	return n
}

// distinctUnvisited returns the distinct entries of nb not present in
// visited, preserving first-occurrence order.
func distinctUnvisited(nb []int, visited map[int]struct{}) []int {
	var out []int
	seen := make(map[int]struct{}, len(nb))
	for _, v := range nb {
		if _, ok := visited[v]; ok {
			continue
		}
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}
