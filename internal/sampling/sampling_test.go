package sampling

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"sgr/internal/gen"
	"sgr/internal/graph"
)

func rng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed^0xabcdef)) }

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := gen.HolmeKim(500, 3, 0.5, rng(11))
	if !g.IsConnected() {
		t.Fatal("test graph must be connected")
	}
	return g
}

// paperGraph builds the 10-node example of Fig. 1.
func paperGraph() *graph.Graph {
	g := graph.New(10)
	// v1..v10 are 0..9. Edges inferred from the example: walking
	// v1,v3,v6,v3 yields E' = {(1,3),(2,3),(3,4),(3,6),(5,6),(6,8)}.
	edges := [][2]int{{0, 2}, {1, 2}, {2, 3}, {2, 5}, {4, 5}, {5, 7}, {6, 8}, {8, 9}, {3, 7}, {6, 9}}
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	return g
}

func TestRandomWalkBudget(t *testing.T) {
	g := testGraph(t)
	a := NewGraphAccess(g)
	c, err := RandomWalk(a, 0, 0.1, rng(1))
	if err != nil {
		t.Fatal(err)
	}
	want := int(0.1 * float64(g.N()))
	if c.NumQueried() != want {
		t.Fatalf("queried %d want %d", c.NumQueried(), want)
	}
	if a.QueriedCount() != want {
		t.Fatalf("access counted %d want %d", a.QueriedCount(), want)
	}
	if len(c.Walk) < c.NumQueried() {
		t.Fatal("walk shorter than distinct queried count")
	}
	// Every consecutive walk pair must be an edge of g.
	for i := 0; i+1 < len(c.Walk); i++ {
		if !g.HasEdge(c.Walk[i], c.Walk[i+1]) {
			t.Fatalf("walk step %d: %d-%d not an edge", i, c.Walk[i], c.Walk[i+1])
		}
	}
}

func TestRandomWalkSteps(t *testing.T) {
	g := testGraph(t)
	c, err := RandomWalkSteps(NewGraphAccess(g), 0, 300, rng(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Walk) != 300 {
		t.Fatalf("walk length %d want 300", len(c.Walk))
	}
	if _, err := RandomWalkSteps(NewGraphAccess(g), 0, 0, rng(2)); err == nil {
		t.Fatal("want error for zero steps")
	}
}

func TestRandomWalkIsolatedNode(t *testing.T) {
	g := graph.New(2)
	g.AddNode()
	if _, err := RandomWalk(NewGraphAccess(g), 0, 1, rng(3)); err == nil {
		t.Fatal("want error when stuck on isolated node")
	}
}

func TestRandomWalkBadFraction(t *testing.T) {
	g := testGraph(t)
	for _, f := range []float64{0, -0.5, 1.5} {
		if _, err := RandomWalk(NewGraphAccess(g), 0, f, rng(4)); err == nil {
			t.Errorf("want error for fraction %v", f)
		}
	}
}

func TestBFSCoversNeighborhoodFirst(t *testing.T) {
	g := testGraph(t)
	c, err := BFS(NewGraphAccess(g), 0, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	want := int(0.2 * float64(g.N()))
	if c.NumQueried() != want {
		t.Fatalf("queried %d want %d", c.NumQueried(), want)
	}
	if c.Queried[0] != 0 {
		t.Fatal("BFS must start at the seed")
	}
	if c.Walk != nil {
		t.Fatal("BFS must not produce a walk sequence")
	}
	// BFS queries the seed's entire neighborhood before distance-2 nodes.
	pos := make(map[int]int)
	for i, u := range c.Queried {
		pos[u] = i
	}
	maxNbrPos := 0
	for _, v := range g.Neighbors(0) {
		p, ok := pos[v]
		if !ok {
			t.Skip("budget smaller than seed neighborhood")
		}
		if p > maxNbrPos {
			maxNbrPos = p
		}
	}
	if maxNbrPos > g.Degree(0)+1 {
		t.Errorf("BFS order violated: seed neighbor at position %d", maxNbrPos)
	}
}

func TestSnowballLimitsBranching(t *testing.T) {
	g := testGraph(t)
	c, err := Snowball(NewGraphAccess(g), 0, 2, 0.2, rng(5))
	if err != nil {
		t.Fatal(err)
	}
	want := int(0.2 * float64(g.N()))
	if c.NumQueried() != want {
		t.Fatalf("queried %d want %d", c.NumQueried(), want)
	}
	if _, err := Snowball(NewGraphAccess(g), 0, 0, 0.2, rng(5)); err == nil {
		t.Fatal("want error for k=0")
	}
}

func TestForestFire(t *testing.T) {
	g := testGraph(t)
	c, err := ForestFire(NewGraphAccess(g), 0, 0.7, 0.2, rng(6))
	if err != nil {
		t.Fatal(err)
	}
	want := int(0.2 * float64(g.N()))
	if c.NumQueried() != want {
		t.Fatalf("queried %d want %d", c.NumQueried(), want)
	}
	for _, pf := range []float64{0, 1, -1} {
		if _, err := ForestFire(NewGraphAccess(g), 0, pf, 0.2, rng(6)); err == nil {
			t.Errorf("want error for pf=%v", pf)
		}
	}
}

func TestForestFireRevives(t *testing.T) {
	// Low pf makes the fire die often; the crawl must still hit its budget.
	g := testGraph(t)
	c, err := ForestFire(NewGraphAccess(g), 0, 0.05, 0.1, rng(7))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQueried() != int(0.1*float64(g.N())) {
		t.Fatalf("revival failed: queried %d", c.NumQueried())
	}
}

func TestMetropolisHastingsWalk(t *testing.T) {
	g := testGraph(t)
	c, err := MetropolisHastingsWalk(NewGraphAccess(g), 0, 0.2, rng(8))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQueried() < int(0.2*float64(g.N())) {
		t.Fatalf("MH underquaried: %d", c.NumQueried())
	}
}

func TestNonBacktrackingWalk(t *testing.T) {
	g := testGraph(t)
	c, err := NonBacktrackingWalk(NewGraphAccess(g), 0, 0.2, rng(9))
	if err != nil {
		t.Fatal(err)
	}
	// No immediate backtracks unless forced by a degree-1 node.
	for i := 2; i < len(c.Walk); i++ {
		if c.Walk[i] == c.Walk[i-2] && g.Degree(c.Walk[i-1]) > 1 {
			t.Fatalf("backtrack at step %d via node of degree %d",
				i, g.Degree(c.Walk[i-1]))
		}
	}
}

func TestNonBacktrackingDegreeOneBacktracks(t *testing.T) {
	// Path graph 0-1: from 1 the only move is back to 0.
	g := graph.New(2)
	g.AddEdge(0, 1)
	c, err := NonBacktrackingWalk(NewGraphAccess(g), 0, 1.0, rng(10))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQueried() != 2 {
		t.Fatalf("queried %d want 2", c.NumQueried())
	}
}

func TestBuildSubgraphPaperExample(t *testing.T) {
	// Reproduce Fig. 1: query v1, v3, v6 (IDs 0, 2, 5).
	g := paperGraph()
	c := &Crawl{
		Queried: []int{0, 2, 5},
		Neighbors: map[int][]int{
			0: g.Neighbors(0),
			2: g.Neighbors(2),
			5: g.Neighbors(5),
		},
		Walk: []int{0, 2, 5, 2},
	}
	s := BuildSubgraph(c)
	// V' = {v1..v6, v8} = IDs {0,1,2,3,4,5,7}: 7 nodes, 6 edges.
	if s.Graph.N() != 7 {
		t.Fatalf("subgraph nodes: %d want 7", s.Graph.N())
	}
	if s.Graph.M() != 6 {
		t.Fatalf("subgraph edges: %d want 6", s.Graph.M())
	}
	if s.NumQueried != 3 {
		t.Fatalf("NumQueried: %d want 3", s.NumQueried)
	}
	// Queried nodes keep their true degrees.
	deg := s.QueriedDegrees(c)
	for i, u := range []int{0, 2, 5} {
		if deg[i] != g.Degree(u) {
			t.Errorf("queried degree of %d: got %d want %d", u, deg[i], g.Degree(u))
		}
	}
	// Queried nodes' subgraph degree == true degree; visible nodes' <=.
	for i := 0; i < s.Graph.N(); i++ {
		orig := s.Nodes[i]
		if s.IsQueried(i) {
			if s.Graph.Degree(i) != g.Degree(orig) {
				t.Errorf("queried node %d: subgraph degree %d != true %d",
					orig, s.Graph.Degree(i), g.Degree(orig))
			}
		} else if s.Graph.Degree(i) > g.Degree(orig) {
			t.Errorf("visible node %d: subgraph degree %d > true %d",
				orig, s.Graph.Degree(i), g.Degree(orig))
		}
	}
}

func TestBuildSubgraphDedupsSharedEdges(t *testing.T) {
	// Querying both endpoints of an edge must not duplicate it.
	g := graph.New(2)
	g.AddEdge(0, 1)
	c := &Crawl{
		Queried:   []int{0, 1},
		Neighbors: map[int][]int{0: g.Neighbors(0), 1: g.Neighbors(1)},
	}
	s := BuildSubgraph(c)
	if s.Graph.M() != 1 {
		t.Fatalf("dedup failed: m=%d", s.Graph.M())
	}
	if s.NumQueried != 2 || len(s.Nodes) != 2 {
		t.Fatalf("unexpected node bookkeeping: %+v", s)
	}
}

func TestSubgraphLemma1OnRealWalk(t *testing.T) {
	// Lemma 1: d'_i == d_i for queried, d'_i <= d_i for visible.
	g := testGraph(t)
	c, err := RandomWalk(NewGraphAccess(g), 3, 0.1, rng(12))
	if err != nil {
		t.Fatal(err)
	}
	s := BuildSubgraph(c)
	for i := 0; i < s.Graph.N(); i++ {
		orig := s.Nodes[i]
		if s.IsQueried(i) {
			if s.Graph.Degree(i) != g.Degree(orig) {
				t.Fatalf("Lemma 1 violated for queried node %d", orig)
			}
		} else if s.Graph.Degree(i) > g.Degree(orig) {
			t.Fatalf("Lemma 1 violated for visible node %d", orig)
		}
	}
	// The subgraph of a connected walk is connected.
	if !s.Graph.IsConnected() {
		t.Fatal("random-walk subgraph must be connected")
	}
}

func TestCrawlDegreeOf(t *testing.T) {
	g := testGraph(t)
	c, err := RandomWalk(NewGraphAccess(g), 0, 0.05, rng(13))
	if err != nil {
		t.Fatal(err)
	}
	u := c.Queried[0]
	d, ok := c.DegreeOf(u)
	if !ok || d != g.Degree(u) {
		t.Fatalf("DegreeOf(%d) = %d,%v want %d,true", u, d, ok, g.Degree(u))
	}
	if _, ok := c.DegreeOf(-1); ok {
		t.Fatal("DegreeOf should fail for unqueried node")
	}
}

// TestSeededRandomWalkMatchesManualSeeding pins the CLI seed-derivation
// contract: SeededRandomWalk must replay exactly what `crawl -seed S` has
// always done (PCG(S, S^0x27d4eb2f), optional start-node draw), because the
// restored daemon's content-addressed cache keys assume the two paths
// produce identical crawls.
func TestSeededRandomWalkMatchesManualSeeding(t *testing.T) {
	g := testGraph(t)
	const seed = uint64(9)

	// Drawn start node.
	r := rand.New(rand.NewPCG(seed, seed^0x27d4eb2f))
	start := r.IntN(g.N())
	want, err := RandomWalk(NewGraphAccess(g), start, 0.1, r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SeededRandomWalk(NewGraphAccess(g), -1, 0.1, seed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("SeededRandomWalk(-1) differs from the manual draw-then-walk sequence")
	}

	// Pinned start node: no draw is consumed before the walk.
	r = rand.New(rand.NewPCG(seed, seed^0x27d4eb2f))
	want, err = RandomWalk(NewGraphAccess(g), 3, 0.1, r)
	if err != nil {
		t.Fatal(err)
	}
	got, err = SeededRandomWalk(NewGraphAccess(g), 3, 0.1, seed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("SeededRandomWalk(3) differs from the pinned-start walk")
	}

	if _, err := SeededRandomWalk(NewGraphAccess(g), g.N(), 0.1, seed); err == nil {
		t.Fatal("out-of-range seed node must error")
	}
}
