package sampling

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// crawlJSON is the stable on-disk form of a Crawl. Real crawls are
// expensive (each query costs API budget and time), so persisting the
// sampling list L and re-running restoration offline is the normal
// workflow.
type crawlJSON struct {
	Version   int     `json:"version"`
	Queried   []int   `json:"queried"`
	Neighbors [][]int `json:"neighbors"` // parallel to Queried
	Walk      []int   `json:"walk,omitempty"`
}

const crawlFormatVersion = 1

// WriteJSON serializes the crawl.
func (c *Crawl) WriteJSON(w io.Writer) error {
	out := crawlJSON{
		Version:   crawlFormatVersion,
		Queried:   c.Queried,
		Neighbors: make([][]int, len(c.Queried)),
		Walk:      c.Walk,
	}
	for i, u := range c.Queried {
		nb, ok := c.Neighbors[u]
		if !ok {
			return fmt.Errorf("sampling: queried node %d missing neighbor list", u)
		}
		out.Neighbors[i] = nb
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ReadCrawlJSON deserializes a crawl written by WriteJSON, validating its
// internal consistency (walk nodes must be queried, lists must align).
func ReadCrawlJSON(r io.Reader) (*Crawl, error) {
	var in crawlJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("sampling: decoding crawl: %w", err)
	}
	if in.Version != crawlFormatVersion {
		return nil, fmt.Errorf("sampling: unsupported crawl format version %d", in.Version)
	}
	return NewCrawl(in.Queried, in.Neighbors, in.Walk)
}

// NewCrawl assembles a Crawl from parallel queried/neighbor-list slices
// plus an optional walk, enforcing every Crawl invariant: list lengths
// align, node and neighbor ids are non-negative, no node is queried
// twice, and the walk only visits queried nodes. It is the single
// validator behind both offline-crawl entry points (crawl JSON files and
// oracle crawl journals), so they accept exactly the same shapes.
func NewCrawl(queried []int, neighbors [][]int, walk []int) (*Crawl, error) {
	if len(queried) != len(neighbors) {
		return nil, fmt.Errorf("sampling: %d queried nodes but %d neighbor lists",
			len(queried), len(neighbors))
	}
	c := &Crawl{
		Queried:   queried,
		Neighbors: make(map[int][]int, len(queried)),
		Walk:      walk,
	}
	for i, u := range queried {
		if u < 0 {
			return nil, fmt.Errorf("sampling: negative queried node id %d at index %d", u, i)
		}
		if _, dup := c.Neighbors[u]; dup {
			return nil, fmt.Errorf("sampling: node %d queried twice", u)
		}
		for _, v := range neighbors[i] {
			if v < 0 {
				return nil, fmt.Errorf("sampling: node %d has negative neighbor id %d", u, v)
			}
		}
		c.Neighbors[u] = neighbors[i]
	}
	for _, u := range c.Walk {
		if _, ok := c.Neighbors[u]; !ok {
			return nil, fmt.Errorf("sampling: walk visits unqueried node %d", u)
		}
	}
	return c, nil
}

// SaveCrawl writes the crawl to a JSON file.
func SaveCrawl(path string, c *Crawl) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadCrawl reads a crawl from a JSON file.
func LoadCrawl(path string) (*Crawl, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCrawlJSON(f)
}
