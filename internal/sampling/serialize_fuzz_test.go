package sampling

import (
	"bytes"
	"testing"
)

// FuzzReadCrawlJSON feeds arbitrary bytes — seeded with a valid crawl and
// the malformations the validator must reject — through the crawl-file
// decoder. The decoder may error but must never panic, and anything it
// accepts must uphold the Crawl invariants and survive a write/read
// round trip.
func FuzzReadCrawlJSON(f *testing.F) {
	f.Add([]byte(`{"version":1,"queried":[3,1],"neighbors":[[1],[3]],"walk":[3,1,3]}`))
	f.Add([]byte(`{"version":2,"queried":[],"neighbors":[]}`))                 // unknown version
	f.Add([]byte(`{"version":1,"queried":[1,2],"neighbors":[[2]]}`))           // length mismatch
	f.Add([]byte(`{"version":1,"queried":[1,1],"neighbors":[[2],[2]]}`))       // duplicate node
	f.Add([]byte(`{"version":1,"queried":[1],"neighbors":[[2]],"walk":[9]}`))  // walk off-list
	f.Add([]byte(`{"version":1,"queried":[-4],"neighbors":[[2]]}`))            // negative id
	f.Add([]byte(`{"version":1,"queried":[4],"neighbors":[[-2]]}`))            // negative neighbor
	f.Add([]byte(`{"version":1,"queried":[4],"neighbors":[[2]],"walk":[4`))    // truncated
	f.Add([]byte(`{"version":1,"queried":"nope","neighbors":[[2]]}`))          // type confusion
	f.Add([]byte(`{"version":1,"queried":[0],"neighbors":[null],"walk":[0]}`)) // null list
	f.Add([]byte(`{"version":1,"queried":[1e9],"neighbors":[[2]],"walk":[]}`)) // huge id
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ReadCrawlJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted crawls must be internally consistent...
		if len(c.Queried) != len(c.Neighbors) {
			t.Fatalf("accepted crawl with %d queried but %d neighbor lists", len(c.Queried), len(c.Neighbors))
		}
		for _, u := range c.Queried {
			if u < 0 {
				t.Fatalf("accepted negative node id %d", u)
			}
			if _, ok := c.Neighbors[u]; !ok {
				t.Fatalf("queried node %d has no neighbor list", u)
			}
		}
		for _, u := range c.Walk {
			if _, ok := c.Neighbors[u]; !ok {
				t.Fatalf("accepted walk through unqueried node %d", u)
			}
		}
		// ...and round-trip: what we write back must read identically.
		var buf bytes.Buffer
		if err := c.WriteJSON(&buf); err != nil {
			t.Fatalf("re-serializing accepted crawl: %v", err)
		}
		c2, err := ReadCrawlJSON(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-reading serialized crawl: %v", err)
		}
		if len(c2.Queried) != len(c.Queried) || len(c2.Walk) != len(c.Walk) {
			t.Fatalf("round trip changed shape: %d/%d queried, %d/%d walk",
				len(c2.Queried), len(c.Queried), len(c2.Walk), len(c.Walk))
		}
	})
}
