package sampling

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestCrawlJSONRoundTrip(t *testing.T) {
	g := testGraph(t)
	c, err := RandomWalk(NewGraphAccess(g), 0, 0.1, rng(70))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCrawlJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Queried) != len(c.Queried) || len(back.Walk) != len(c.Walk) {
		t.Fatalf("round trip sizes: %d/%d queried, %d/%d walk",
			len(back.Queried), len(c.Queried), len(back.Walk), len(c.Walk))
	}
	for i, u := range c.Queried {
		if back.Queried[i] != u {
			t.Fatalf("queried[%d] mismatch", i)
		}
		a, b := c.Neighbors[u], back.Neighbors[u]
		if len(a) != len(b) {
			t.Fatalf("neighbor list of %d mismatch", u)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("neighbor %d of %d mismatch", j, u)
			}
		}
	}
	// The deserialized crawl must drive the same subgraph.
	s1, s2 := BuildSubgraph(c), BuildSubgraph(back)
	if s1.Graph.N() != s2.Graph.N() || s1.Graph.M() != s2.Graph.M() {
		t.Fatal("subgraphs differ after round trip")
	}
}

func TestCrawlJSONValidation(t *testing.T) {
	cases := []string{
		`{"version":99,"queried":[],"neighbors":[]}`,                 // bad version
		`{"version":1,"queried":[1],"neighbors":[]}`,                 // misaligned
		`{"version":1,"queried":[1,1],"neighbors":[[2],[2]]}`,        // duplicate
		`{"version":1,"queried":[1],"neighbors":[[2]],"walk":[1,2]}`, // walk unqueried
		`not json`, // garbage
	}
	for _, in := range cases {
		if _, err := ReadCrawlJSON(strings.NewReader(in)); err == nil {
			t.Errorf("want error for %q", in)
		}
	}
}

func TestSaveLoadCrawlFile(t *testing.T) {
	g := testGraph(t)
	c, err := RandomWalk(NewGraphAccess(g), 0, 0.05, rng(71))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "crawl.json")
	if err := SaveCrawl(path, c); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCrawl(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumQueried() != c.NumQueried() {
		t.Fatal("file round trip lost data")
	}
	if _, err := LoadCrawl(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("want error for missing file")
	}
}
