package sampling

import (
	"sort"

	"sgr/internal/graph"
)

// Subgraph is the induced subgraph G' = (V', E') of Sec. III-D: E' is the
// union of the neighbor sets of all queried nodes, V' consists of the
// queried nodes plus the nodes visible as their neighbors.
//
// Nodes keep their original IDs from the hidden graph; the Graph field is a
// relabeled dense copy (0..len(Nodes)-1) with Nodes giving newID -> oldID
// and Index the inverse.
type Subgraph struct {
	// Graph is the relabeled induced subgraph.
	Graph *graph.Graph
	// Nodes maps relabeled ID -> original ID. Queried nodes come first, in
	// first-query order, followed by visible nodes in ascending original ID.
	Nodes []int
	// Index maps original ID -> relabeled ID.
	Index map[int]int
	// NumQueried is the number of queried nodes; relabeled IDs
	// [0, NumQueried) are queried and [NumQueried, len(Nodes)) are visible.
	NumQueried int
}

// IsQueried reports whether relabeled node u was queried (vs merely visible).
func (s *Subgraph) IsQueried(u int) bool { return u < s.NumQueried }

// BuildSubgraph constructs G' from a crawl. Edges are deduplicated: an edge
// seen from both of its queried endpoints appears once. The hidden graphs in
// this work are simple, so E' is a set of simple edges.
func BuildSubgraph(c *Crawl) *Subgraph {
	s := &Subgraph{Index: make(map[int]int)}
	for _, u := range c.Queried {
		s.Index[u] = len(s.Nodes)
		s.Nodes = append(s.Nodes, u)
	}
	s.NumQueried = len(s.Nodes)

	// Collect visible nodes (neighbors that were never queried).
	visSet := make(map[int]struct{})
	for _, u := range c.Queried {
		for _, v := range c.Neighbors[u] {
			if _, queried := c.Neighbors[v]; !queried {
				visSet[v] = struct{}{}
			}
		}
	}
	visible := make([]int, 0, len(visSet))
	for v := range visSet {
		visible = append(visible, v)
	}
	sort.Ints(visible)
	for _, v := range visible {
		s.Index[v] = len(s.Nodes)
		s.Nodes = append(s.Nodes, v)
	}

	g := graph.New(len(s.Nodes))
	seen := make(map[graph.Edge]struct{})
	for _, u := range c.Queried {
		ru := s.Index[u]
		for _, v := range c.Neighbors[u] {
			rv := s.Index[v]
			e := graph.Edge{U: ru, V: rv}.Canon()
			if _, dup := seen[e]; dup {
				continue
			}
			seen[e] = struct{}{}
			g.AddEdge(e.U, e.V)
		}
	}
	s.Graph = g
	return s
}

// QueriedDegrees returns, for each relabeled queried node, its TRUE degree
// in the hidden graph (the neighbor-list length), indexed by relabeled ID.
func (s *Subgraph) QueriedDegrees(c *Crawl) []int {
	d := make([]int, s.NumQueried)
	for i := 0; i < s.NumQueried; i++ {
		d[i] = len(c.Neighbors[s.Nodes[i]])
	}
	return d
}
