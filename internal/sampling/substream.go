package sampling

import "math/rand/v2"

// Sub-stream derivation. Parallel subsystems that need many independent,
// reproducible RNG streams — one per worker-pool job, one per rewiring
// shard — must derive them from a (seed1, seed2) base pair instead of
// sharing a single *rand.Rand: a shared stream's draw order depends on
// goroutine scheduling, while derived streams depend only on the stream
// index. SubSeeds is the canonical derivation: it finalizes the index
// through SplitMix64 so that adjacent indices (0, 1, 2, ...) land in
// statistically unrelated PCG streams, and mixes the result into seed2 so
// the base pair still selects the whole family.
//
// The derivation is part of any caller's byte-determinism contract:
// changing these constants re-seeds every consumer, so they are as frozen
// as the on-disk formats.

// splitmix64 is the SplitMix64 finalizer (Steele, Lea & Flood 2014) — the
// standard generator for seeding families of PRNG streams from a counter.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SubSeeds derives the PCG seed pair of sub-stream idx from a base pair.
// Distinct indices yield distinct, decorrelated streams; idx 0 is already
// a different stream than the base pair itself.
func SubSeeds(seed1, seed2, idx uint64) (uint64, uint64) {
	return seed1, seed2 ^ splitmix64(idx+1)
}

// SubStream returns the *rand.Rand of sub-stream idx of the (seed1,
// seed2) family. Two calls with equal arguments return generators that
// produce identical draw sequences, regardless of which goroutine owns
// them — the property that lets a fixed shard/job decomposition stay
// byte-deterministic at any worker count.
func SubStream(seed1, seed2, idx uint64) *rand.Rand {
	s1, s2 := SubSeeds(seed1, seed2, idx)
	return rand.New(rand.NewPCG(s1, s2))
}
