package sampling

import (
	"fmt"
	"math/rand/v2"
)

// MetropolisHastingsWalk performs a Metropolis–Hastings random walk whose
// stationary distribution is uniform over nodes: a proposed move from u to a
// uniform neighbor v is accepted with probability min(1, d_u/d_v), otherwise
// the walk self-loops at u. Discussed in the paper's related work as an
// alternative to re-weighting.
func MetropolisHastingsWalk(access Access, seed int, fraction float64, r *rand.Rand) (*Crawl, error) {
	budget, err := budgetFromFraction(access, fraction)
	if err != nil {
		return nil, err
	}
	rec := newRecorder(access)
	cur := seed
	for {
		nb := rec.query(cur)
		rec.crawl.Walk = append(rec.crawl.Walk, cur)
		if rec.numQueried() >= budget {
			break
		}
		if len(nb) == 0 {
			return nil, fmt.Errorf("sampling: MH walk stuck at isolated node %d", cur)
		}
		v := nb[r.IntN(len(nb))]
		dv := len(rec.query(v))
		if rec.numQueried() >= budget {
			// Querying the proposal consumed the budget; record and stop.
			rec.crawl.Walk = append(rec.crawl.Walk, v)
			break
		}
		if dv == 0 {
			continue
		}
		if du := len(nb); r.Float64() < float64(du)/float64(dv) {
			cur = v
		}
	}
	return rec.crawl, nil
}

// NonBacktrackingWalk performs the non-backtracking random walk of Lee,
// Xu & Eun (SIGMETRICS 2012): the next node is chosen uniformly among the
// current node's neighbors excluding the previous node, unless the current
// node has degree one, in which case the walk backtracks.
func NonBacktrackingWalk(access Access, seed int, fraction float64, r *rand.Rand) (*Crawl, error) {
	budget, err := budgetFromFraction(access, fraction)
	if err != nil {
		return nil, err
	}
	rec := newRecorder(access)
	cur, prev := seed, -1
	for {
		nb := rec.query(cur)
		rec.crawl.Walk = append(rec.crawl.Walk, cur)
		if rec.numQueried() >= budget {
			break
		}
		if len(nb) == 0 {
			return nil, fmt.Errorf("sampling: NB walk stuck at isolated node %d", cur)
		}
		next := -1
		if len(nb) == 1 {
			next = nb[0]
		} else {
			// Rejection-sample a neighbor different from prev. prev can
			// appear multiple times (multi-edges), so count its multiplicity
			// to bound the loop.
			for {
				cand := nb[r.IntN(len(nb))]
				if cand != prev {
					next = cand
					break
				}
				// All neighbors equal prev (multi-edge leaf): backtrack.
				all := true
				for _, w := range nb {
					if w != prev {
						all = false
						break
					}
				}
				if all {
					next = prev
					break
				}
			}
		}
		prev, cur = cur, next
	}
	return rec.crawl, nil
}
