package sampling

import (
	"fmt"
	"math/rand/v2"
)

// MetropolisHastingsWalk performs a Metropolis–Hastings random walk whose
// stationary distribution is uniform over nodes: a proposed move from u to a
// uniform neighbor v is accepted with probability min(1, d_u/d_v), otherwise
// the walk self-loops at u. Discussed in the paper's related work as an
// alternative to re-weighting.
func MetropolisHastingsWalk(access Access, seed int, fraction float64, r *rand.Rand) (*Crawl, error) {
	budget, err := budgetFromFraction(access, fraction)
	if err != nil {
		return nil, err
	}
	rec := newRecorder(access)
	cur := seed
	for {
		nb := rec.query(cur)
		rec.crawl.Walk = append(rec.crawl.Walk, cur)
		if rec.numQueried() >= budget {
			break
		}
		if len(nb) == 0 {
			return nil, fmt.Errorf("sampling: MH walk stuck at isolated node %d", cur)
		}
		v := nb[r.IntN(len(nb))]
		dv := len(rec.query(v))
		if rec.numQueried() >= budget {
			// Querying the proposal consumed the budget before the
			// acceptance test could run. The query is counted (v is in the
			// sampling list), but the proposal must NOT be recorded as a
			// walk step: every recorded transition has to have passed the
			// MH acceptance rule, or the chain's stationary distribution —
			// and every re-weighted estimator built on it — is biased.
			break
		}
		// dv >= 1 always: v was returned as a neighbor of cur, so in an
		// undirected graph it is incident to at least the edge (cur, v).
		if du := len(nb); r.Float64() < float64(du)/float64(dv) {
			cur = v
		}
	}
	return rec.crawl, nil
}

// MetropolisHastingsWalkSteps performs the same Metropolis–Hastings walk
// for exactly steps recorded steps (with repetition), regardless of the
// distinct-query count — the fixed-length variant used for studying the
// chain's stationary distribution, mirroring RandomWalkSteps.
func MetropolisHastingsWalkSteps(access Access, seed, steps int, r *rand.Rand) (*Crawl, error) {
	if steps < 1 {
		return nil, fmt.Errorf("sampling: steps %d < 1", steps)
	}
	rec := newRecorder(access)
	cur := seed
	for i := 0; i < steps; i++ {
		nb := rec.query(cur)
		rec.crawl.Walk = append(rec.crawl.Walk, cur)
		if i == steps-1 {
			break
		}
		if len(nb) == 0 {
			return nil, fmt.Errorf("sampling: MH walk stuck at isolated node %d", cur)
		}
		v := nb[r.IntN(len(nb))]
		dv := len(rec.query(v)) // >= 1: v is adjacent to cur
		if du := len(nb); r.Float64() < float64(du)/float64(dv) {
			cur = v
		}
	}
	return rec.crawl, nil
}

// allEqual reports whether every entry of nb equals w.
func allEqual(nb []int, w int) bool {
	for _, v := range nb {
		if v != w {
			return false
		}
	}
	return true
}

// NonBacktrackingWalk performs the non-backtracking random walk of Lee,
// Xu & Eun (SIGMETRICS 2012): the next node is chosen uniformly among the
// current node's neighbors excluding the previous node, unless the current
// node has degree one, in which case the walk backtracks.
func NonBacktrackingWalk(access Access, seed int, fraction float64, r *rand.Rand) (*Crawl, error) {
	budget, err := budgetFromFraction(access, fraction)
	if err != nil {
		return nil, err
	}
	rec := newRecorder(access)
	cur, prev := seed, -1
	for {
		nb := rec.query(cur)
		rec.crawl.Walk = append(rec.crawl.Walk, cur)
		if rec.numQueried() >= budget {
			break
		}
		if len(nb) == 0 {
			return nil, fmt.Errorf("sampling: NB walk stuck at isolated node %d", cur)
		}
		next := -1
		switch {
		case len(nb) == 1:
			next = nb[0] // degree-1 node: forced backtrack
		case allEqual(nb, prev):
			// Multi-edge leaf: every incident edge leads back to prev, so
			// the walk must backtrack. Detecting this once up front keeps
			// the rejection loop below guaranteed to terminate without
			// re-scanning the neighbor list on every rejected draw.
			next = prev
		default:
			// Rejection-sample a neighbor different from prev; at least
			// one exists, so the loop terminates with probability 1.
			for {
				if cand := nb[r.IntN(len(nb))]; cand != prev {
					next = cand
					break
				}
			}
		}
		prev, cur = cur, next
	}
	return rec.crawl, nil
}
