package sampling

import (
	"math"
	"testing"

	"sgr/internal/gen"
	"sgr/internal/graph"
)

// fakeN overrides NumNodes, letting tests pin the query budget while
// walking a larger hidden graph.
type fakeN struct {
	Access
	n int
}

func (f fakeN) NumNodes() int { return f.n }

func TestBudgetFromFractionRounds(t *testing.T) {
	cases := []struct {
		fraction float64
		n        int
		want     int
	}{
		// Truncation-loss cases: fraction*N lands just below the integer
		// in float64 (e.g. 0.7*90 = 62.999999999999993), and int() used to
		// silently drop one query from the protocol's budget.
		{0.7, 90, 63},
		{0.7, 170, 119},
		{0.7, 330, 231},
		// Classic float-representation fractions whose products round back
		// to the exact integer; rounding must not disturb them.
		{0.1, 230, 23},
		{0.1, 500, 50},
		{0.03, 700, 21},
		{0.03, 1000, 30},
		{0.005, 4600, 23},
		{0.07, 100, 7},
		{1.0, 17, 17},
		// Sub-1 budgets clamp to a single query.
		{0.004, 100, 1},
	}
	for _, c := range cases {
		a := fakeN{n: c.n}
		got, err := budgetFromFraction(a, c.fraction)
		if err != nil {
			t.Fatalf("budgetFromFraction(%v, %d): %v", c.fraction, c.n, err)
		}
		if got != c.want {
			t.Errorf("budgetFromFraction(%v, %d) = %d, want %d", c.fraction, c.n, got, c.want)
		}
	}
	for _, bad := range []float64{0, -0.1, 1.0001} {
		if _, err := budgetFromFraction(fakeN{n: 10}, bad); err == nil {
			t.Errorf("fraction %v: want error", bad)
		}
	}
}

// starGraph returns a star: node 0 is a leaf, node 1 the center joined to
// leaves 0 and 2..k.
func starGraph(k int) *graph.Graph {
	g := graph.New(k + 1)
	g.AddEdge(0, 1)
	for v := 2; v <= k; v++ {
		g.AddEdge(1, v)
	}
	return g
}

// TestMHDoesNotRecordUnacceptedProposal is the regression test for the
// budget-exhaustion bug: when querying the proposal consumes the last
// query, the proposal was never subjected to the acceptance test and must
// not appear in the recorded chain.
func TestMHDoesNotRecordUnacceptedProposal(t *testing.T) {
	g := starGraph(100) // leaf 0 has degree 1, center 1 has degree 100
	a := fakeN{Access: NewGraphAccess(g), n: 2}
	// Budget 2: querying the proposal (the center) exhausts it before the
	// acceptance test — which would accept with probability 1/100 — runs.
	c, err := MetropolisHastingsWalk(a, 0, 1.0, rng(1))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQueried() != 2 {
		t.Fatalf("queried %d want 2 (the proposal query is still counted)", c.NumQueried())
	}
	if len(c.Walk) != 1 || c.Walk[0] != 0 {
		t.Fatalf("walk %v: must record only the seed, not the unaccepted proposal", c.Walk)
	}
}

// TestMHLastStepPassedAcceptance runs the budget-exhaustion scenario over
// many RNG streams. The graph is a 2-node path feeding a high-degree hub:
// the hub can only ever be queried as a proposal, and that query always
// exhausts the budget — so the hub must never appear as the final recorded
// step (with the old recording bug it appeared on every stream).
func TestMHLastStepPassedAcceptance(t *testing.T) {
	const hub = 2
	g := graph.New(103)
	g.AddEdge(0, 1)
	g.AddEdge(1, hub)
	for v := 3; v < 103; v++ {
		g.AddEdge(hub, v)
	}
	for s := uint64(0); s < 300; s++ {
		// Budget 3: exhausted exactly when the hub is first queried.
		a := fakeN{Access: NewGraphAccess(g), n: 3}
		c, err := MetropolisHastingsWalk(a, 0, 1.0, rng(s))
		if err != nil {
			t.Fatal(err)
		}
		if c.NumQueried() != 3 {
			t.Fatalf("seed %d: queried %d want 3", s, c.NumQueried())
		}
		if last := c.Walk[len(c.Walk)-1]; last == hub {
			t.Fatalf("seed %d: walk ends at the hub, whose proposal query exhausted the budget before the acceptance test ran", s)
		}
	}
}

func TestMetropolisHastingsWalkSteps(t *testing.T) {
	g := testGraph(t)
	c, err := MetropolisHastingsWalkSteps(NewGraphAccess(g), 0, 400, rng(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Walk) != 400 {
		t.Fatalf("walk length %d want 400", len(c.Walk))
	}
	for i := 0; i+1 < len(c.Walk); i++ {
		if c.Walk[i] != c.Walk[i+1] && !g.HasEdge(c.Walk[i], c.Walk[i+1]) {
			t.Fatalf("step %d: %d-%d is neither a self-loop nor an edge", i, c.Walk[i], c.Walk[i+1])
		}
	}
	if _, err := MetropolisHastingsWalkSteps(NewGraphAccess(g), 0, 0, rng(2)); err == nil {
		t.Fatal("want error for zero steps")
	}
}

// TestMHWalkUniformVisitsChiSquare checks the defining property of the MH
// walk — a uniform stationary distribution over nodes — on a small fixed
// graph with strongly heterogeneous degrees, via a chi-square test of the
// empirical visit counts (fixed seed, thinned to damp autocorrelation).
func TestMHWalkUniformVisitsChiSquare(t *testing.T) {
	// K4 on {0,1,2,3} plus a path 3-4-5 and leaves 5-6, 5-7: degrees 1..4.
	g := graph.New(8)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
		{3, 4}, {4, 5}, {5, 6}, {5, 7}} {
		g.AddEdge(e[0], e[1])
	}
	const steps = 400000
	c, err := MetropolisHastingsWalkSteps(NewGraphAccess(g), 0, steps, rng(42))
	if err != nil {
		t.Fatal(err)
	}
	const burn = 2000
	const thin = 5
	counts := make([]float64, g.N())
	samples := 0.0
	for i := burn; i < len(c.Walk); i += thin {
		counts[c.Walk[i]]++
		samples++
	}
	expected := samples / float64(g.N())
	chi2 := 0.0
	for u, obs := range counts {
		d := obs - expected
		chi2 += d * d / expected
		frac := obs / samples
		if math.Abs(frac-1.0/float64(g.N())) > 0.02 {
			t.Errorf("node %d visit fraction %.4f deviates from uniform %.4f", u, frac, 1.0/float64(g.N()))
		}
	}
	// df = 7; the 0.999 quantile is ~24.3. Thinning leaves residual
	// autocorrelation, so allow a generous margin — a biased walk (e.g.
	// degree-proportional visits) scores in the thousands here.
	if chi2 > 50 {
		t.Fatalf("chi-square %.1f too large: MH visits are not uniform", chi2)
	}

	// Contrast: the simple random walk on the same graph is degree-biased
	// and must fail the same test, proving the statistic has power.
	cs, err := RandomWalkSteps(NewGraphAccess(g), 0, steps, rng(43))
	if err != nil {
		t.Fatal(err)
	}
	srw := make([]float64, g.N())
	n := 0.0
	for i := burn; i < len(cs.Walk); i += thin {
		srw[cs.Walk[i]]++
		n++
	}
	exp := n / float64(g.N())
	chiSRW := 0.0
	for _, obs := range srw {
		d := obs - exp
		chiSRW += d * d / exp
	}
	if chiSRW < 50 {
		t.Fatalf("simple random walk chi-square %.1f unexpectedly uniform: test has no power", chiSRW)
	}
}

// TestNonBacktrackingMultiEdgeLeafBacktracks: node 1 hangs off node 0 by
// two parallel edges (degree 2, one distinct neighbor). Entering it forces
// a backtrack, which the walker must detect without hanging.
func TestNonBacktrackingMultiEdgeLeafBacktracks(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	for s := uint64(0); s < 64; s++ {
		c, err := NonBacktrackingWalk(NewGraphAccess(g), 0, 1.0, rng(s))
		if err != nil {
			t.Fatal(err)
		}
		for i := 2; i < len(c.Walk); i++ {
			if c.Walk[i] == c.Walk[i-2] {
				mid := c.Walk[i-1]
				if g.Degree(mid) > 1 && !allEqual(g.Neighbors(mid), c.Walk[i-2]) {
					t.Fatalf("seed %d: unforced backtrack at step %d via node %d", s, i, mid)
				}
			}
		}
		if len(c.Walk) >= 3 && c.Walk[0] == 0 && c.Walk[1] == 1 {
			if c.Walk[2] != 0 {
				t.Fatalf("seed %d: walk %v must backtrack from the multi-edge leaf", s, c.Walk)
			}
			return // forced-backtrack case exercised
		}
	}
	t.Fatal("no RNG stream entered the multi-edge leaf; strengthen the test setup")
}

// TestNonBacktrackingBacktracksOnlyWhenForced checks the walker on a
// multigraph with parallel edges: a backtrack may occur only at degree-1
// nodes or multi-edge leaves (all incident edges lead to the predecessor).
func TestNonBacktrackingBacktracksOnlyWhenForced(t *testing.T) {
	g := gen.HolmeKim(200, 2, 0.4, rng(21))
	// Duplicate some edges so multi-edges exist on the walk's path.
	for _, e := range g.Edges()[:40] {
		g.AddEdge(e.U, e.V)
	}
	c, err := NonBacktrackingWalk(NewGraphAccess(g), 0, 0.5, rng(22))
	if err != nil {
		t.Fatal(err)
	}
	backtracks := 0
	for i := 2; i < len(c.Walk); i++ {
		if c.Walk[i] != c.Walk[i-2] {
			continue
		}
		backtracks++
		mid := c.Walk[i-1]
		if g.Degree(mid) > 1 && !allEqual(g.Neighbors(mid), c.Walk[i-2]) {
			t.Fatalf("unforced backtrack at step %d via node %d (degree %d)", i, mid, g.Degree(mid))
		}
	}
	t.Logf("walk length %d, forced backtracks %d", len(c.Walk), backtracks)
}
