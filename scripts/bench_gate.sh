#!/usr/bin/env bash
# bench_gate.sh — fail when a freshly recorded benchmark baseline regresses
# against the committed one.
#
# Usage: bench_gate.sh COMMITTED.json FRESH.json [MAX_REGRESSION_PCT]
#
# Joins the two benchjson documents on benchmark name and compares ns/op.
# A benchmark present in both files whose fresh ns/op exceeds the committed
# value by more than MAX_REGRESSION_PCT (default 20) fails the gate.
# Benchmarks that exist on only one side are reported but never fail the
# gate: new benchmarks have no baseline yet, and retired ones have no fresh
# number — both are a review concern, not a perf regression.
#
# The threshold is deliberately loose. Shared CI runners jitter by tens of
# percent run to run; this gate exists to catch the 2x accidental
# regression (a dropped fast path, an O(n^2) slip), not 5% noise. Tighten
# it only on quiet dedicated hardware.
set -euo pipefail

if [ $# -lt 2 ] || [ $# -gt 3 ]; then
  echo "usage: $0 COMMITTED.json FRESH.json [MAX_REGRESSION_PCT]" >&2
  exit 2
fi
committed=$1
fresh=$2
max_pct=${3:-20}

for f in "$committed" "$fresh"; do
  if [ ! -f "$f" ]; then
    echo "bench_gate: missing $f" >&2
    exit 2
  fi
done

# name<TAB>ns_per_op lines for one document.
extract() {
  jq -r '.benchmarks[] | [.name, (.ns_per_op | tostring)] | @tsv' "$1"
}

extract "$committed" | sort > /tmp/bench_gate_base.$$
extract "$fresh" | sort > /tmp/bench_gate_fresh.$$
trap 'rm -f /tmp/bench_gate_base.$$ /tmp/bench_gate_fresh.$$' EXIT

# Inner join on name; awk applies the threshold to each pair.
join -t "$(printf '\t')" /tmp/bench_gate_base.$$ /tmp/bench_gate_fresh.$$ |
  awk -F '\t' -v max="$max_pct" '
    {
      base = $2 + 0; now = $3 + 0
      if (base <= 0) next
      pct = (now - base) * 100.0 / base
      mark = "ok"
      if (pct > max) { mark = "REGRESSED"; bad++ }
      printf "%-60s %14.0f -> %14.0f ns/op  %+7.1f%%  %s\n", $1, base, now, pct, mark
    }
    END { exit bad > 0 ? 1 : 0 }
  ' || gate_failed=1

# One-sided benchmarks: informational only.
comm -23 <(cut -f1 /tmp/bench_gate_base.$$) <(cut -f1 /tmp/bench_gate_fresh.$$) |
  sed 's/^/bench_gate: note: committed-only (retired?): /'
comm -13 <(cut -f1 /tmp/bench_gate_base.$$) <(cut -f1 /tmp/bench_gate_fresh.$$) |
  sed 's/^/bench_gate: note: fresh-only (no baseline yet): /'

if [ "${gate_failed:-0}" -ne 0 ]; then
  echo "bench_gate: FAIL — ns/op regression over ${max_pct}% against $committed" >&2
  exit 1
fi
echo "bench_gate: PASS — no benchmark regressed over ${max_pct}% against $committed"
