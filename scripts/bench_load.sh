#!/usr/bin/env bash
# bench_load.sh — records BENCH_load.json, the workload-trajectory
# baseline: boots graphd + restored on random ports, drives the standard
# seeded loadgen mix at them, and writes the full correlated SLO report
# (client histograms, server scrape deltas, cross-checks, verdict) to the
# repository root. Run by `make bench-load-json`; CI uploads the file as
# an artifact so the serving-stack latency trajectory is tracked per
# commit, alongside the micro-benchmark BENCH_*.json baselines.
#
# The SLO in scripts/slo_load.json is deliberately generous — wide enough
# for a loaded CI runner — because this baseline's job is to *record* the
# trajectory and fail only on gross regressions (errors, mismatched
# counters, order-of-magnitude latency blowups), not to flake on noisy
# neighbors.
set -euo pipefail
cd "$(dirname "$0")/.."
. scripts/lib.sh

out=${1:-BENCH_load.json}
tmp=$(mktemp -d)
graphd_pid=""
restored_pid=""
cleanup() {
  [ -n "$graphd_pid" ] && kill "$graphd_pid" 2>/dev/null || true
  [ -n "$restored_pid" ] && kill "$restored_pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

echo "== building =="
go build -o "$tmp/gengraph" ./cmd/gengraph
go build -o "$tmp/crawl" ./cmd/crawl
go build -o "$tmp/loadgen" ./cmd/loadgen
go build -o "$tmp/graphd" ./cmd/graphd
go build -o "$tmp/restored" ./cmd/restored

echo "== generating graph, booting daemons =="
"$tmp/gengraph" -dataset anybeat -scale 0.1 -seed 3 -out "$tmp/g.edges"
"$tmp/graphd" -graph "$tmp/g.edges" -addr 127.0.0.1:0 -addr-file "$tmp/graphd.addr" \
  >"$tmp/graphd.log" 2>&1 &
graphd_pid=$!
"$tmp/restored" -addr 127.0.0.1:0 -addr-file "$tmp/restored.addr" \
  >"$tmp/restored.log" 2>&1 &
restored_pid=$!
wait_for_addr_file "$tmp/graphd.addr" "$graphd_pid" "$tmp/graphd.log"
wait_for_addr_file "$tmp/restored.addr" "$restored_pid" "$tmp/restored.log"
gurl="http://$(cat "$tmp/graphd.addr")"
rurl="http://$(cat "$tmp/restored.addr")"

"$tmp/crawl" -graph "$tmp/g.edges" -method rw -fraction 0.1 -seed 3 \
  -save-crawl "$tmp/crawl.json" -out /dev/null

echo "== recording the load trajectory =="
"$tmp/loadgen" -graphd "$gurl" -restored "$rurl" -crawl "$tmp/crawl.json" \
  -seed 1 -clients 16 -rate 200 -duration 5s -rc 2 \
  -slo scripts/slo_load.json -out "$out"
jq -e '.slo.pass and (.correlation | all(.checked and .consistent))' "$out" >/dev/null \
  || { echo "load baseline unhealthy:"; jq '{slo: .slo.pass, correlation}' "$out"; exit 1; }

kill "$graphd_pid" "$restored_pid"
wait "$graphd_pid" 2>/dev/null || true
wait "$restored_pid" 2>/dev/null || true
graphd_pid=""
restored_pid=""
echo "recorded $out"
