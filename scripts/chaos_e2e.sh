#!/usr/bin/env bash
# chaos_e2e.sh — the crash-safety acceptance gate, run by `make chaos` and
# CI's chaos job:
#
#   1. generate a graph, crawl it, and restore offline with cmd/restore —
#      the byte-identity reference for everything that follows,
#   2. boot a race-enabled restored daemon with a disk cache, submit the
#      crawl as a slow job (high rc), wait until it is mid-pipeline, and
#      kill the daemon with SIGKILL — no drain, no cleanup,
#   3. restart restored on the same cache dir and require that the SAME
#      job id — never resubmitted — is replayed from the job WAL, runs to
#      completion, and downloads byte-identical to the offline restore,
#   4. exercise cancellation over the wire: DELETE a running job, watch it
#      settle as cancelled, and require the second DELETE to answer 409,
#   5. boot a race-enabled graphd with every fault mode enabled (truncate,
#      corrupt, stall, reset, plus transient 503s) and require a remote
#      crawl through it byte-identical to the local crawl at the same seed.
set -euo pipefail
cd "$(dirname "$0")/.."
. scripts/lib.sh

tmp=$(mktemp -d)
restored_pid=""
graphd_pid=""
cleanup() {
  [ -n "$restored_pid" ] && kill "$restored_pid" 2>/dev/null || true
  [ -n "$graphd_pid" ] && kill "$graphd_pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

echo "== building (daemons with -race) =="
go build -o "$tmp/gengraph" ./cmd/gengraph
go build -o "$tmp/crawl" ./cmd/crawl
go build -o "$tmp/restore" ./cmd/restore
go build -race -o "$tmp/restored" ./cmd/restored
go build -race -o "$tmp/graphd" ./cmd/graphd

echo "== generating graph + crawl =="
"$tmp/gengraph" -dataset anybeat -scale 0.3 -seed 3 -out "$tmp/g.edges"
"$tmp/crawl" -graph "$tmp/g.edges" -method rw -fraction 0.15 -seed 3 \
  -save-crawl "$tmp/crawl.json" -out /dev/null

# rc 100 keeps the rewiring phase busy for several seconds under -race:
# long enough to guarantee the SIGKILL below lands mid-pipeline.
rc=100

echo "== offline restoration (the reference) =="
"$tmp/restore" -crawl "$tmp/crawl.json" -rc $rc -seed 3 -compare=false \
  -out-binary "$tmp/offline.sgrb" | grep 'restored:'

# boot_restored ADDRFILE LOG — sets the globals restored_pid and url (no
# command substitution: a subshell would swallow the pid).
boot_restored() {
  "$tmp/restored" -addr 127.0.0.1:0 -addr-file "$1" -workers 1 \
    -cache-dir "$tmp/cache" >"$2" 2>&1 &
  restored_pid=$!
  wait_for_addr_file "$1" "$restored_pid" "$2"
  url="http://$(cat "$1")"
}

wait_for_state() { # URL ID WANT [TRIES]
  local url=$1 id=$2 want=$3 tries=${4:-600} state
  for _ in $(seq "$tries"); do
    state=$(curl -fsS "$url/v1/jobs/$id" | jq -r .state)
    case "$state" in
    "$want") return 0 ;;
    failed) echo "error: job $id failed" >&2 && return 1 ;;
    esac
    sleep 0.1
  done
  echo "error: job $id stuck in '$state', want '$want'" >&2
  return 1
}

echo "== boot #1: submit, wait until mid-pipeline, SIGKILL =="
boot_restored "$tmp/addr1" "$tmp/restored1.log"
printf '{"seed":3,"rc":%d,"crawl":%s}' $rc "$(cat "$tmp/crawl.json")" > "$tmp/job.json"
id=$(curl -fsS -X POST --data-binary @"$tmp/job.json" "$url/v1/jobs" | jq -r .id)
echo "job $id"
wait_for_state "$url" "$id" running
sleep 1 # let the pipeline get properly underway
state=$(curl -fsS "$url/v1/jobs/$id" | jq -r .state)
[ "$state" = running ] || { echo "error: job finished before the kill (state $state) — raise rc" >&2; exit 1; }
kill -9 "$restored_pid"
wait "$restored_pid" 2>/dev/null || true
restored_pid=""
echo "killed restored mid-job"

echo "== boot #2: same cache dir — the WAL must replay the job =="
boot_restored "$tmp/addr2" "$tmp/restored2.log"
grep -q 'replayed from wal' "$tmp/restored2.log" || {
  echo "error: restart did not replay the job; its log:" >&2
  cat "$tmp/restored2.log" >&2
  exit 1
}
curl -fsS "$url/v1/metrics" -o "$tmp/metrics2.txt"
grep -q '^restored_jobs_replayed 1$' "$tmp/metrics2.txt" || {
  echo "error: restored_jobs_replayed != 1" >&2
  exit 1
}
wait_for_state "$url" "$id" done
curl -fsS "$url/v1/jobs/$id/graph" -o "$tmp/recovered.sgrb"
cmp "$tmp/offline.sgrb" "$tmp/recovered.sgrb"
echo "recovered graph is byte-identical to the offline restore"

echo "== boot #3: a second restart must NOT replay the finished job =="
kill "$restored_pid" && wait "$restored_pid" 2>/dev/null || true
restored_pid=""
boot_restored "$tmp/addr3" "$tmp/restored3.log"
curl -fsS "$url/v1/metrics" -o "$tmp/metrics3.txt"
grep -q '^restored_jobs_replayed 0$' "$tmp/metrics3.txt" || {
  echo "error: finished job was replayed again" >&2
  exit 1
}

echo "== cancellation over the wire =="
printf '{"seed":9,"rc":%d,"crawl":%s}' $rc "$(cat "$tmp/crawl.json")" > "$tmp/job2.json"
cid=$(curl -fsS -X POST --data-binary @"$tmp/job2.json" "$url/v1/jobs" | jq -r .id)
wait_for_state "$url" "$cid" running
curl -fsS -X DELETE "$url/v1/jobs/$cid" > /dev/null
wait_for_state "$url" "$cid" cancelled
code=$(curl -s -o /dev/null -w '%{http_code}' -X DELETE "$url/v1/jobs/$cid")
[ "$code" = 409 ] || { echo "error: second DELETE answered $code, want 409" >&2; exit 1; }
curl -fsS "$url/v1/metrics" -o "$tmp/metrics4.txt"
grep -q '^restored_jobs_cancelled 1$' "$tmp/metrics4.txt" || {
  echo "error: restored_jobs_cancelled != 1" >&2
  exit 1
}
echo "DELETE cancelled a running job; repeat DELETE answered 409"

echo "== crawling through a graphd serving every fault mode =="
"$tmp/graphd" -graph "$tmp/g.edges" -addr 127.0.0.1:0 -addr-file "$tmp/gaddr" \
  -error-rate 0.1 -fault-truncate 0.05 -fault-corrupt 0.05 \
  -fault-stall 0.05 -fault-stall-delay 10ms -fault-reset 0.05 \
  -fault-seed 42 >"$tmp/graphd.log" 2>&1 &
graphd_pid=$!
wait_for_addr_file "$tmp/gaddr" "$graphd_pid" "$tmp/graphd.log"
gurl="http://$(cat "$tmp/gaddr")"
"$tmp/crawl" -graph "$tmp/g.edges" -method rw -fraction 0.1 -seed 7 -seed-node 17 \
  -save-crawl "$tmp/local.json" -out /dev/null
"$tmp/crawl" -url "$gurl" -method rw -fraction 0.1 -seed 7 -seed-node 17 -retries 40 \
  -save-crawl "$tmp/remote.json" -out /dev/null
cmp "$tmp/local.json" "$tmp/remote.json"
faulted=$(curl -fsS "$gurl/v1/metrics" | awk '/^graphd_faulted /{print $2}')
[ "${faulted:-0}" -gt 0 ] || { echo "error: graphd injected no faults — fair-weather run" >&2; exit 1; }
echo "crawl under faults ($faulted injected) is byte-identical to the local crawl"

echo "chaos e2e: OK"
