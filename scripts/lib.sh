# lib.sh — helpers shared by the e2e scripts (source, do not execute).

# check_prometheus FILE
#
# Validates a /v1/metrics scrape as Prometheus text exposition format
# 0.0.4: every line is a `# HELP`/`# TYPE` comment or a
# `name[{labels}] value` sample with a numeric value, and the scrape
# carries at least one sample. Unparseable lines are printed and fail the
# check — the scrape contract both daemons promise.
check_prometheus() {
  awk '
    /^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* / { next }
    /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$/ { n++; next }
    { print "unparseable metrics line: " $0 > "/dev/stderr"; bad = 1 }
    END {
      if (bad) exit 1
      if (n == 0) { print "no samples in scrape" > "/dev/stderr"; exit 1 }
    }
  ' "$1"
}

# wait_for_addr_file FILE PID LOG [TRIES]
#
# Bounded wait for a daemon to publish its -addr-file. Fails fast with the
# daemon's log when the process dies, and — crucially — when the file never
# appears within TRIES*0.1s, instead of letting the caller hang until a CI
# step timeout with no diagnostic.
wait_for_addr_file() {
  local file=$1 pid=$2 log=$3 tries=${4:-100}
  local i
  for i in $(seq "$tries"); do
    [ -f "$file" ] && return 0
    if ! kill -0 "$pid" 2>/dev/null; then
      echo "error: daemon exited before publishing $file; its log:" >&2
      cat "$log" >&2 || true
      return 1
    fi
    sleep 0.1
  done
  echo "error: daemon still has not published $file after $tries checks (~$((tries / 10))s); giving up instead of hanging. Its log:" >&2
  cat "$log" >&2 || true
  return 1
}
