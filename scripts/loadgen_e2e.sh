#!/usr/bin/env bash
# loadgen_e2e.sh — the workload-observability acceptance gate, run by
# `make loadgen-e2e` and CI's oracle-integration job:
#
#   1. generate a graph and boot race-enabled graphd + restored daemons on
#      random ports,
#   2. crawl graphd over HTTP with -stats-json and require the transport
#      stats to be machine-readable and populated,
#   3. run a short seeded loadgen swarm twice with the same seed and
#      require the two runs' schedule hashes to be identical (the
#      determinism contract: same seed + config = same request schedule),
#   4. require the SLO report well-formed: endpoints populated, both
#      server scrapes parsed, and every client<->server correlation check
#      consistent (server counter deltas exactly explain the client's
#      observed successes),
#   5. require a generous SLO to pass (exit 0) and an unattainable SLO to
#      fail with exit 2 — the two exits CI automation keys on.
set -euo pipefail
cd "$(dirname "$0")/.."
. scripts/lib.sh

tmp=$(mktemp -d)
graphd_pid=""
restored_pid=""
cleanup() {
  [ -n "$graphd_pid" ] && kill "$graphd_pid" 2>/dev/null || true
  [ -n "$restored_pid" ] && kill "$restored_pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

echo "== building (daemons with -race) =="
go build -o "$tmp/gengraph" ./cmd/gengraph
go build -o "$tmp/crawl" ./cmd/crawl
go build -o "$tmp/loadgen" ./cmd/loadgen
go build -race -o "$tmp/graphd" ./cmd/graphd
go build -race -o "$tmp/restored" ./cmd/restored

echo "== generating graph, booting daemons on random ports =="
"$tmp/gengraph" -dataset anybeat -scale 0.05 -seed 3 -out "$tmp/g.edges"
"$tmp/graphd" -graph "$tmp/g.edges" -addr 127.0.0.1:0 -addr-file "$tmp/graphd.addr" \
  >"$tmp/graphd.log" 2>&1 &
graphd_pid=$!
"$tmp/restored" -addr 127.0.0.1:0 -addr-file "$tmp/restored.addr" -workers 2 \
  >"$tmp/restored.log" 2>&1 &
restored_pid=$!
wait_for_addr_file "$tmp/graphd.addr" "$graphd_pid" "$tmp/graphd.log"
wait_for_addr_file "$tmp/restored.addr" "$restored_pid" "$tmp/restored.log"
gurl="http://$(cat "$tmp/graphd.addr")"
rurl="http://$(cat "$tmp/restored.addr")"
echo "graphd at $gurl, restored at $rurl"

echo "== remote crawl with -stats-json =="
"$tmp/crawl" -url "$gurl" -method rw -fraction 0.1 -seed 3 \
  -save-crawl "$tmp/crawl.json" -stats-json "$tmp/crawl-stats.json" -out /dev/null
jq -e '.nodes_fetched > 0 and .requests > 0 and .queries > 0 and .query_p50_ns >= 0' \
  "$tmp/crawl-stats.json" >/dev/null \
  || { echo "crawl -stats-json not populated:"; cat "$tmp/crawl-stats.json"; exit 1; }
echo "crawl stats JSON: $(jq -c '{nodes_fetched, requests, queries}' "$tmp/crawl-stats.json")"

echo "== seeded loadgen swarm, twice with the same seed =="
cat > "$tmp/slo.json" <<'EOF'
{
  "max_error_rate": 0,
  "endpoints": {
    "graphd_neighbors": {"p99_usec": 30000000, "min_throughput_rps": 1},
    "restored_submit": {"p99_usec": 30000000}
  }
}
EOF
run_loadgen() {
  "$tmp/loadgen" -graphd "$gurl" -restored "$rurl" -crawl "$tmp/crawl.json" \
    -seed 7 -clients 8 -rate 90 -duration 2s -rc 2 -slo "$tmp/slo.json" \
    -out "$1" -q
}
run_loadgen "$tmp/report1.json"
run_loadgen "$tmp/report2.json"

hash1=$(jq -r .schedule.hash "$tmp/report1.json")
hash2=$(jq -r .schedule.hash "$tmp/report2.json")
[ -n "$hash1" ] && [ "$hash1" != null ] || { echo "report has no schedule hash"; exit 1; }
[ "$hash1" = "$hash2" ] \
  || { echo "same seed produced different schedules: $hash1 vs $hash2"; exit 1; }
echo "schedule hash stable across runs: ${hash1:0:12}..."

echo "== report well-formed: endpoints, server scrapes, correlation =="
rep="$tmp/report1.json"
jq -e '.schedule.events > 0' "$rep" >/dev/null || { echo "no events"; exit 1; }
jq -e '[.endpoints[] | select(.requests > 0)] | length >= 4' "$rep" >/dev/null \
  || { echo "fewer than 4 endpoints saw traffic:"; jq .endpoints "$rep"; exit 1; }
jq -e '.endpoints[] | select(.endpoint == "graphd_neighbors") | .ok > 0 and .p99_usec > 0' "$rep" >/dev/null \
  || { echo "neighbor endpoint unhealthy:"; jq .endpoints "$rep"; exit 1; }
jq -e '.servers.graphd.scrape_ok and .servers.restored.scrape_ok' "$rep" >/dev/null \
  || { echo "server scrape failed:"; jq .servers "$rep"; exit 1; }
jq -e '.servers.restored.histograms["restored_request_usec"].count > 0' "$rep" >/dev/null \
  || { echo "restored_request_usec histogram empty in scrape delta:"; jq .servers.restored "$rep"; exit 1; }
jq -e '.correlation | length == 2 and all(.checked and .consistent)' "$rep" >/dev/null \
  || { echo "correlation checks failed:"; jq .correlation "$rep"; exit 1; }
echo "correlation: $(jq -c '[.correlation[] | {name, client_expected, server_observed}]' "$rep")"

echo "== SLO verdicts: generous passes, unattainable fails with exit 2 =="
jq -e '.slo.pass == true' "$rep" >/dev/null \
  || { echo "generous SLO did not pass:"; jq .slo "$rep"; exit 1; }
cat > "$tmp/slo-tight.json" <<'EOF'
{"endpoints": {"graphd_neighbors": {"p99_usec": 1}}}
EOF
set +e
"$tmp/loadgen" -graphd "$gurl" -crawl "$tmp/crawl.json" \
  -seed 7 -clients 4 -rate 40 -duration 1s -slo "$tmp/slo-tight.json" \
  -out "$tmp/report-fail.json" -q
code=$?
set -e
[ "$code" = 2 ] || { echo "unattainable SLO exited $code, want 2"; exit 1; }
jq -e '.slo.pass == false and ([.slo.checks[] | select(.pass | not)] | length >= 1)' \
  "$tmp/report-fail.json" >/dev/null \
  || { echo "failing report lacks failed checks:"; jq .slo "$tmp/report-fail.json"; exit 1; }
echo "SLO fail path: exit 2 with $(jq '[.slo.checks[] | select(.pass | not)] | length' "$tmp/report-fail.json") failed check(s)"

kill "$graphd_pid" "$restored_pid"
wait "$graphd_pid" 2>/dev/null || true
wait "$restored_pid" 2>/dev/null || true
graphd_pid=""
restored_pid=""
echo "loadgen e2e: OK"
