#!/usr/bin/env bash
# oracle_e2e.sh — the client/server acceptance gate, run by `make oracle-e2e`
# and CI's oracle-integration job:
#
#   1. generate a graph and boot graphd on a random port (with injected
#      latency, jitter and transient 503s),
#   2. crawl it over HTTP with a race-enabled crawl binary, journaled,
#   3. crawl the same graph in memory at the same seed,
#   4. require the two crawl JSONs and subgraph edge lists byte-identical,
#   5. resume a deliberately interrupted crawl from its journal without
#      re-spending budget, and restore offline from the journal.
set -euo pipefail
cd "$(dirname "$0")/.."
. scripts/lib.sh

tmp=$(mktemp -d)
graphd_pid=""
cleanup() {
  [ -n "$graphd_pid" ] && kill "$graphd_pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

echo "== building (crawl with -race) =="
go build -o "$tmp/gengraph" ./cmd/gengraph
go build -o "$tmp/graphd" ./cmd/graphd
go build -o "$tmp/restore" ./cmd/restore
go build -race -o "$tmp/crawl" ./cmd/crawl

echo "== generating hidden graph =="
"$tmp/gengraph" -dataset anybeat -scale 0.05 -seed 3 -out "$tmp/g.edges"

echo "== booting graphd on a random port with injected faults =="
"$tmp/graphd" -graph "$tmp/g.edges" -addr 127.0.0.1:0 -addr-file "$tmp/addr" \
  -latency 1ms -jitter 1ms -error-rate 0.05 -fault-seed 7 \
  >"$tmp/graphd.log" 2>&1 &
graphd_pid=$!
wait_for_addr_file "$tmp/addr" "$graphd_pid" "$tmp/graphd.log"
url="http://$(cat "$tmp/addr")"
echo "graphd at $url"

echo "== daemon health endpoints =="
curl -fsS "$url/v1/healthz" | grep -q '"status":"ok"'
curl -fsS "$url/v1/metrics" | grep -Eq '^graphd_queries_served [0-9]+$'
echo "healthz ok, metrics scrape parses"

echo "== remote crawl (journaled, under -race) vs in-memory crawl =="
"$tmp/crawl" -url "$url" -fraction 0.1 -seed 3 \
  -journal "$tmp/crawl.journal" -save-crawl "$tmp/http.json" -out "$tmp/http.edges"
"$tmp/crawl" -graph "$tmp/g.edges" -fraction 0.1 -seed 3 \
  -save-crawl "$tmp/mem.json" -out "$tmp/mem.edges"
cmp "$tmp/http.json" "$tmp/mem.json"
cmp "$tmp/http.edges" "$tmp/mem.edges"
echo "remote and in-memory crawls byte-identical"
curl -fsS "$url/v1/metrics" | grep -Eq '^graphd_active_clients [1-9]' \
  || { echo "metrics did not count the crawler as an active client"; exit 1; }

echo "== Prometheus exposition + request latency histogram =="
curl -fsS "$url/v1/metrics" > "$tmp/metrics.txt"
check_prometheus "$tmp/metrics.txt"
usec_count=$(awk '$1 == "graphd_request_usec_count" {print $2}' "$tmp/metrics.txt")
[ -n "$usec_count" ] && [ "$usec_count" -gt 0 ] \
  || { echo "graphd_request_usec histogram is empty"; cat "$tmp/metrics.txt"; exit 1; }
grep -Eq '^graphd_request_usec_p50 [0-9]+$' "$tmp/metrics.txt" \
  || { echo "missing graphd_request_usec_p50 readout"; exit 1; }
grep -Eq '^graphd_request_usec_p99 [0-9]+$' "$tmp/metrics.txt" \
  || { echo "missing graphd_request_usec_p99 readout"; exit 1; }
echo "exposition valid, request_usec count=$usec_count with p50/p99"

echo "== interrupted crawl resumes from journal without re-spending =="
# A shorter run of the same seeded walk is a strict prefix: its journal
# must satisfy the full rerun's prefix, so the resume fetches only the
# tail (fetched-over-HTTP count strictly below the distinct-query count).
"$tmp/crawl" -url "$url" -fraction 0.03 -seed 3 -journal "$tmp/resume.journal" \
  -out /dev/null 2>"$tmp/short.err"
"$tmp/crawl" -url "$url" -fraction 0.1 -seed 3 -journal "$tmp/resume.journal" \
  -stats -save-crawl "$tmp/resumed.json" -out /dev/null 2>"$tmp/resume.err"
grep -E 'oracle: [0-9]+ nodes fetched' "$tmp/resume.err"
grep -E 'oracle stats: queries=[0-9]+ p50=' "$tmp/resume.err" \
  || { echo "crawl -stats printed no transport statistics"; cat "$tmp/resume.err"; exit 1; }
replayed=$(sed -nE 's/.*\(([0-9]+) replayed from journal\).*/\1/p' "$tmp/resume.err")
[ "$replayed" -gt 0 ] || { echo "resume replayed nothing"; exit 1; }
cmp "$tmp/resumed.json" "$tmp/mem.json"
echo "resumed crawl byte-identical, $replayed queries replayed for free"

echo "== offline restoration from the journaled crawl =="
"$tmp/restore" -journal "$tmp/resume.journal" -rc 5 -seed 3 -compare=false \
  | grep 'restored:'

kill "$graphd_pid"
wait "$graphd_pid" 2>/dev/null || true
graphd_pid=""
grep 'served' "$tmp/graphd.log" || true
echo "oracle e2e: OK"
