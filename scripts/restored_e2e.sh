#!/usr/bin/env bash
# restored_e2e.sh — the restoration-as-a-service acceptance gate, run by
# `make restored-e2e` and CI's oracle-integration job:
#
#   1. generate a graph, crawl it locally, and restore offline with
#      cmd/restore (-out and -out-binary) — the byte-identity reference,
#   2. boot a race-enabled restored daemon on a random port,
#   3. submit the crawl as a job, poll it to completion, download the
#      result in both formats, and require them byte-identical to the
#      offline restore at the same seed,
#   4. round-trip the binary download through gengraph -from-binary,
#   5. resubmit the identical job (plus a whitespace-respelled variant) and
#      assert via the daemon's counters that the pipeline ran exactly once,
#   6. check the shared /v1/healthz and /v1/metrics endpoints: valid
#      Prometheus exposition with populated pipeline latency histograms,
#   7. fetch the job's trace (ordered spans + chrome dump) and the
#      queue_usec/phase_usec timeline fields of its status.
set -euo pipefail
cd "$(dirname "$0")/.."
. scripts/lib.sh

tmp=$(mktemp -d)
restored_pid=""
cleanup() {
  [ -n "$restored_pid" ] && kill "$restored_pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

echo "== building (restored with -race) =="
go build -o "$tmp/gengraph" ./cmd/gengraph
go build -o "$tmp/crawl" ./cmd/crawl
go build -o "$tmp/restore" ./cmd/restore
go build -race -o "$tmp/restored" ./cmd/restored

echo "== generating graph + crawl =="
"$tmp/gengraph" -dataset anybeat -scale 0.05 -seed 3 -out "$tmp/g.edges"
"$tmp/crawl" -graph "$tmp/g.edges" -method rw -fraction 0.1 -seed 3 \
  -save-crawl "$tmp/crawl.json" -out /dev/null

echo "== offline restoration (the reference) =="
"$tmp/restore" -crawl "$tmp/crawl.json" -rc 5 -seed 3 -compare=false \
  -out "$tmp/offline.edges" -out-binary "$tmp/offline.sgrb" | grep 'restored:'

echo "== booting restored on a random port (race-enabled, disk cache) =="
"$tmp/restored" -addr 127.0.0.1:0 -addr-file "$tmp/addr" -workers 2 \
  -cache-dir "$tmp/cache" >"$tmp/restored.log" 2>&1 &
restored_pid=$!
wait_for_addr_file "$tmp/addr" "$restored_pid" "$tmp/restored.log"
url="http://$(cat "$tmp/addr")"
echo "restored at $url"
curl -fsS "$url/v1/healthz" | grep -q '"status":"ok"'

echo "== submit -> poll -> download =="
printf '{"seed":3,"rc":5,"crawl":%s}' "$(cat "$tmp/crawl.json")" > "$tmp/job.json"
id=$(curl -fsS -X POST --data-binary @"$tmp/job.json" "$url/v1/jobs" | jq -r .id)
echo "job $id"
state=""
for _ in $(seq 300); do
  state=$(curl -fsS "$url/v1/jobs/$id" | jq -r .state)
  case "$state" in
    done) break ;;
    failed) echo "job failed:"; curl -fsS "$url/v1/jobs/$id"; exit 1 ;;
  esac
  sleep 0.1
done
if [ "$state" != done ]; then
  echo "error: job still '$state' after 30s; daemon log:" >&2
  cat "$tmp/restored.log" >&2
  exit 1
fi

curl -fsS "$url/v1/jobs/$id/graph" -o "$tmp/job.sgrb"
cmp "$tmp/job.sgrb" "$tmp/offline.sgrb"
curl -fsS "$url/v1/jobs/$id/graph?format=edgelist" -o "$tmp/job.edges"
cmp "$tmp/job.edges" "$tmp/offline.edges"
echo "downloads byte-identical to the offline restore"

echo "== gengraph round-trips the binary download =="
"$tmp/gengraph" -from-binary "$tmp/job.sgrb" -out "$tmp/roundtrip.edges"
cmp "$tmp/roundtrip.edges" "$tmp/offline.edges"
echo "binary codec round-trip exact"

echo "== identical resubmission: no second pipeline run =="
code=$(curl -sS -o "$tmp/resubmit.json" -w '%{http_code}' -X POST \
  --data-binary @"$tmp/job.json" "$url/v1/jobs")
[ "$code" = 200 ] || { echo "resubmit answered HTTP $code, want 200"; exit 1; }
jq -e '.state == "done"' "$tmp/resubmit.json" >/dev/null

# A whitespace/indentation re-spelling of the same submission is the same
# content address.
jq . "$tmp/job.json" > "$tmp/job-pretty.json"
id2=$(curl -fsS -X POST --data-binary @"$tmp/job-pretty.json" "$url/v1/jobs" | jq -r .id)
[ "$id2" = "$id" ] || { echo "re-spelled submission got a new job id $id2"; exit 1; }

curl -fsS "$url/v1/metrics" > "$tmp/metrics.txt"
metric() { awk -v n="$1" '$1 == n {print $2}' "$tmp/metrics.txt"; }
runs=$(metric restored_pipeline_runs)
deduped=$(metric restored_jobs_deduped)
entries=$(metric restored_cache_entries)
[ "$runs" = 1 ] || { echo "pipeline ran $runs times, want exactly 1"; cat "$tmp/metrics.txt"; exit 1; }
[ "$deduped" -ge 2 ] || { echo "deduped=$deduped, want >= 2"; cat "$tmp/metrics.txt"; exit 1; }
[ "$entries" = 1 ] || { echo "cache entries=$entries, want 1"; cat "$tmp/metrics.txt"; exit 1; }
echo "counters: pipeline_runs=$runs deduped=$deduped cache_entries=$entries"

echo "== Prometheus exposition + pipeline latency histograms =="
check_prometheus "$tmp/metrics.txt"
usec_count=$(metric restored_pipeline_usec_count)
[ -n "$usec_count" ] && [ "$usec_count" -ge 1 ] \
  || { echo "restored_pipeline_usec histogram is empty"; cat "$tmp/metrics.txt"; exit 1; }
grep -Eq '^restored_pipeline_usec_p50 [0-9]+$' "$tmp/metrics.txt" \
  || { echo "missing restored_pipeline_usec_p50 readout"; exit 1; }
grep -Eq '^restored_pipeline_usec_p99 [0-9]+$' "$tmp/metrics.txt" \
  || { echo "missing restored_pipeline_usec_p99 readout"; exit 1; }
echo "exposition valid, pipeline_usec count=$usec_count with p50/p99"

echo "== job trace: ordered spans + chrome dump =="
curl -fsS "$url/v1/jobs/$id/trace" > "$tmp/trace.json"
jq -e '.spans | length > 0' "$tmp/trace.json" >/dev/null \
  || { echo "trace has no spans"; cat "$tmp/trace.json"; exit 1; }
jq -e '[.spans[].start_usec] == ([.spans[].start_usec] | sort)' "$tmp/trace.json" >/dev/null \
  || { echo "trace spans are not ordered"; cat "$tmp/trace.json"; exit 1; }
for span in queue estimate phase4_rewire encode cache_write; do
  jq -e --arg s "$span" 'any(.spans[]; .name == $s)' "$tmp/trace.json" >/dev/null \
    || { echo "trace missing span $span"; cat "$tmp/trace.json"; exit 1; }
done
curl -fsS "$url/v1/jobs/$id/trace?format=chrome" | jq -e '.traceEvents | length > 0' >/dev/null \
  || { echo "chrome trace dump is empty"; exit 1; }
jq -e '.queue_usec >= 0 and .phase_usec > 0' <(curl -fsS "$url/v1/jobs/$id") >/dev/null \
  || { echo "job status lacks queue_usec/phase_usec timeline"; exit 1; }
echo "trace: $(jq '.spans | length' "$tmp/trace.json") ordered spans over $(jq .total_usec "$tmp/trace.json")us"

kill "$restored_pid"
wait "$restored_pid" 2>/dev/null || true
restored_pid=""
echo "restored e2e: OK"
