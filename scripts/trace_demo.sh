#!/usr/bin/env bash
# trace_demo.sh — `make trace-demo`: produce a pipeline flame chart in two
# commands. Generates a small graph, crawls it, restores with -trace, and
# leaves a Chrome trace_event file to load at chrome://tracing (or
# https://ui.perfetto.dev). The trace is pure observability output: the
# restored graph is byte-identical with and without it.
set -euo pipefail
cd "$(dirname "$0")/.."

out=${TRACE_OUT:-trace.json}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== building =="
go build -o "$tmp/gengraph" ./cmd/gengraph
go build -o "$tmp/crawl" ./cmd/crawl
go build -o "$tmp/restore" ./cmd/restore

echo "== generate + crawl =="
"$tmp/gengraph" -dataset anybeat -scale 0.05 -seed 3 -out "$tmp/g.edges"
"$tmp/crawl" -graph "$tmp/g.edges" -method rw -fraction 0.1 -seed 3 \
  -save-crawl "$tmp/crawl.json" -out /dev/null

echo "== traced restoration =="
"$tmp/restore" -crawl "$tmp/crawl.json" -rc 5 -seed 3 -compare=false \
  -trace "$out" -out /dev/null

echo "trace demo: load $out in chrome://tracing or ui.perfetto.dev"
