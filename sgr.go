package sgr

import (
	"math/rand/v2"

	"sgr/internal/core"
	"sgr/internal/dkseries"
	"sgr/internal/estimate"
	"sgr/internal/graph"
	"sgr/internal/harness"
	"sgr/internal/layout"
	"sgr/internal/metrics"
	"sgr/internal/props"
	"sgr/internal/sampling"
)

// Re-exported core types. Aliases keep the implementation packages internal
// while giving users a single import path.
type (
	// Graph is an undirected multigraph with dense integer node IDs.
	Graph = graph.Graph
	// Edge is an undirected edge instance.
	Edge = graph.Edge
	// Crawl is the outcome of a crawling method: queried nodes, their
	// neighbor lists (the paper's sampling list L), and the walk sequence.
	Crawl = sampling.Crawl
	// Subgraph is the induced subgraph G' of a crawl.
	Subgraph = sampling.Subgraph
	// Walk is a preprocessed random-walk sample ready for estimation.
	Walk = estimate.Walk
	// Estimates bundles the five local-property estimates.
	Estimates = estimate.Estimates
	// Options configures Restore / RestoreGjoka.
	Options = core.Options
	// Result is a restored graph with its targets and timings.
	Result = core.Result
	// Properties bundles the paper's 12 structural properties.
	Properties = props.Result
	// PropertyOptions tunes property computation.
	PropertyOptions = props.Options
	// RewireStats reports phase-4 rewiring activity.
	RewireStats = dkseries.RewireStats
	// EvalConfig configures a full method-comparison experiment.
	EvalConfig = harness.Config
	// Evaluation aggregates a method-comparison experiment.
	Evaluation = harness.Evaluation
	// Method names one of the six compared methods.
	Method = harness.Method
)

// The six compared methods (Sec. V-D).
const (
	MethodBFS      = harness.MethodBFS
	MethodSnowball = harness.MethodSnowball
	MethodFF       = harness.MethodFF
	MethodRW       = harness.MethodRW
	MethodGjoka    = harness.MethodGjoka
	MethodProposed = harness.MethodProposed
)

// NewGraph returns a graph with n isolated nodes.
func NewGraph(n int) *Graph { return graph.New(n) }

// LoadGraph reads a whitespace edge-list file, relabeling nodes densely.
func LoadGraph(path string) (*Graph, error) {
	g, _, err := graph.LoadEdgeList(path)
	return g, err
}

// SaveGraph writes the graph as an edge-list file.
func SaveGraph(path string, g *Graph) error { return graph.SaveEdgeList(path, g) }

// Preprocess mirrors the paper's dataset preparation: simplify and extract
// the largest connected component.
func Preprocess(g *Graph) *Graph {
	clean, _ := graph.Preprocess(g)
	return clean
}

// RandomWalk crawls g by simple random walk from the seed node until the
// given fraction of nodes has been queried (Sec. III-B).
func RandomWalk(g *Graph, seed int, fraction float64, r *rand.Rand) (*Crawl, error) {
	return sampling.RandomWalk(sampling.NewGraphAccess(g), seed, fraction, r)
}

// BuildSubgraph constructs the induced subgraph G' of a crawl (Sec. III-D).
func BuildSubgraph(c *Crawl) *Subgraph { return sampling.BuildSubgraph(c) }

// Estimate runs the five re-weighted random-walk estimators (Sec. III-E).
func Estimate(c *Crawl) (*Estimates, error) {
	w, err := estimate.NewWalk(c)
	if err != nil {
		return nil, err
	}
	return estimate.All(w), nil
}

// Restore runs the proposed restoration method (Sec. IV).
func Restore(c *Crawl, opts Options) (*Result, error) { return core.Restore(c, opts) }

// RestoreGjoka runs the reproducible Gjoka et al. baseline (Appendix B).
func RestoreGjoka(c *Crawl, opts Options) (*Result, error) { return core.RestoreGjoka(c, opts) }

// ComputeProperties evaluates the paper's 12 structural properties.
func ComputeProperties(g *Graph, opts PropertyOptions) *Properties {
	return props.Compute(g, opts)
}

// CompareL1 returns the 12 normalized L1 distances between a generated
// graph's properties and the original's, in PropertyNames order.
func CompareL1(generated, original *Properties) []float64 {
	return metrics.PerProperty(generated, original)
}

// PropertyNames lists the 12 properties in Table II column order.
var PropertyNames = metrics.PropertyNames

// Evaluate runs the paper's full comparison protocol on an original graph.
func Evaluate(g *Graph, cfg EvalConfig) (*Evaluation, error) {
	return harness.Evaluate(g, cfg)
}

// SaveVisualization lays the graph out force-directed and writes an SVG,
// reproducing the paper's Fig. 4 style.
func SaveVisualization(path string, g *Graph, title string, r *rand.Rand) error {
	return layout.SaveSVG(path, g, layout.Options{Rand: r}, layout.SVGOptions{Title: title})
}
