package sgr_test

import (
	"math/rand/v2"
	"path/filepath"
	"testing"

	"sgr"
	"sgr/internal/gen"
)

// TestPublicAPIWorkflow exercises the complete facade: generate, save,
// load, preprocess, crawl, estimate, restore (both methods), score,
// visualize, evaluate.
func TestPublicAPIWorkflow(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	g := gen.HolmeKim(800, 3, 0.5, r)

	dir := t.TempDir()
	path := filepath.Join(dir, "g.edges")
	if err := sgr.SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	loaded, err := sgr.LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.N() != g.N() || loaded.M() != g.M() {
		t.Fatalf("load round trip: n=%d m=%d", loaded.N(), loaded.M())
	}
	clean := sgr.Preprocess(loaded)
	if !clean.IsConnected() {
		t.Fatal("Preprocess must return the connected LCC")
	}

	crawl, err := sgr.RandomWalk(clean, 0, 0.10, r)
	if err != nil {
		t.Fatal(err)
	}
	sub := sgr.BuildSubgraph(crawl)
	if sub.NumQueried != crawl.NumQueried() {
		t.Fatal("subgraph bookkeeping mismatch")
	}
	est, err := sgr.Estimate(crawl)
	if err != nil {
		t.Fatal(err)
	}
	if est.N <= 0 || est.AvgDeg <= 0 {
		t.Fatalf("estimates: %+v", est)
	}

	res, err := sgr.Restore(crawl, sgr.Options{RC: 5, Rand: r})
	if err != nil {
		t.Fatal(err)
	}
	gj, err := sgr.RestoreGjoka(crawl, sgr.Options{RC: 5, Rand: r})
	if err != nil {
		t.Fatal(err)
	}

	origProps := sgr.ComputeProperties(clean, sgr.PropertyOptions{})
	ds := sgr.CompareL1(sgr.ComputeProperties(res.Graph, sgr.PropertyOptions{}), origProps)
	if len(ds) != len(sgr.PropertyNames) || len(ds) != 12 {
		t.Fatalf("CompareL1 returned %d distances", len(ds))
	}
	_ = gj

	svg := filepath.Join(dir, "g.svg")
	if err := sgr.SaveVisualization(svg, res.Graph, "restored", r); err != nil {
		t.Fatal(err)
	}
}

func TestPublicEvaluate(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	g := gen.HolmeKim(500, 3, 0.5, r)
	ev, err := sgr.Evaluate(g, sgr.EvalConfig{
		Fraction: 0.10,
		Runs:     1,
		RC:       3,
		Seed:     5,
		Methods:  []sgr.Method{sgr.MethodRW, sgr.MethodGjoka, sgr.MethodProposed},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []sgr.Method{sgr.MethodRW, sgr.MethodGjoka, sgr.MethodProposed} {
		if ev.AvgL1(m) < 0 {
			t.Fatalf("AvgL1(%s) negative", m)
		}
	}
}

func TestMethodConstantsMatchHarness(t *testing.T) {
	names := []sgr.Method{
		sgr.MethodBFS, sgr.MethodSnowball, sgr.MethodFF,
		sgr.MethodRW, sgr.MethodGjoka, sgr.MethodProposed,
	}
	seen := map[sgr.Method]bool{}
	for _, m := range names {
		if seen[m] {
			t.Fatalf("duplicate method constant %q", m)
		}
		seen[m] = true
	}
}
